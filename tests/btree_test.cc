#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "domains/btree/btree.h"
#include "domains/btree/btree_page.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

TEST(BtreePageTest, LeafInsertLookupErase) {
  BtreePage page;
  page.LeafInsert(5, "five");
  page.LeafInsert(1, "one");
  page.LeafInsert(3, "three");
  ASSERT_EQ(page.leaf_entries.size(), 3u);
  EXPECT_EQ(page.leaf_entries[0].key, 1u);
  EXPECT_EQ(page.leaf_entries[2].key, 5u);
  std::vector<uint8_t> v;
  ASSERT_TRUE(page.LeafLookup(3, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "three");
  EXPECT_TRUE(page.LeafLookup(4, &v).IsNotFound());
  // Overwrite.
  page.LeafInsert(3, "THREE");
  ASSERT_TRUE(page.LeafLookup(3, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "THREE");
  EXPECT_EQ(page.leaf_entries.size(), 3u);
  EXPECT_TRUE(page.LeafErase(3));
  EXPECT_FALSE(page.LeafErase(3));
  EXPECT_EQ(page.leaf_entries.size(), 2u);
}

TEST(BtreePageTest, SerializeRoundTrip) {
  BtreePage leaf;
  leaf.LeafInsert(7, "seven");
  leaf.LeafInsert(2, "two");
  ObjectValue bytes = leaf.Serialize();
  BtreePage out;
  ASSERT_TRUE(BtreePage::Deserialize(Slice(bytes), &out).ok());
  EXPECT_TRUE(out.is_leaf);
  ASSERT_EQ(out.leaf_entries.size(), 2u);
  EXPECT_EQ(out.leaf_entries[0].key, 2u);

  BtreePage internal;
  internal.is_leaf = false;
  internal.first_child = 11;
  internal.InternalInsert(10, 12);
  internal.InternalInsert(20, 13);
  bytes = internal.Serialize();
  ASSERT_TRUE(BtreePage::Deserialize(Slice(bytes), &out).ok());
  EXPECT_FALSE(out.is_leaf);
  EXPECT_EQ(out.first_child, 11u);
  EXPECT_EQ(out.ChildFor(5), 11u);
  EXPECT_EQ(out.ChildFor(10), 12u);
  EXPECT_EQ(out.ChildFor(15), 12u);
  EXPECT_EQ(out.ChildFor(25), 13u);
}

TEST(BtreePageTest, LeafSplitIsDeterministicMidpoint) {
  BtreePage page;
  for (uint64_t k = 1; k <= 10; ++k) page.LeafInsert(k, "v");
  BtreePage right;
  uint64_t sep = page.SplitInto(&right);
  EXPECT_EQ(page.leaf_entries.size(), 5u);
  EXPECT_EQ(right.leaf_entries.size(), 5u);
  EXPECT_EQ(sep, right.leaf_entries.front().key);
  EXPECT_EQ(sep, 6u);
}

TEST(BtreePageTest, InternalSplitMovesMiddleKeyUp) {
  BtreePage page;
  page.is_leaf = false;
  page.first_child = 100;
  for (uint64_t k = 1; k <= 5; ++k) page.InternalInsert(k * 10, 100 + k);
  BtreePage right;
  uint64_t sep = page.SplitInto(&right);
  EXPECT_EQ(sep, 30u);
  EXPECT_EQ(page.internal_entries.size(), 2u);
  EXPECT_EQ(right.first_child, 103u);  // child of the promoted key
  EXPECT_EQ(right.internal_entries.size(), 2u);
}

class BtreeModeTest : public testing::TestWithParam<bool> {};

TEST_P(BtreeModeTest, InsertLookupThroughSplits) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  BtreeOptions bopts;
  bopts.max_page_bytes = 256;  // force frequent splits
  bopts.logical_splits = GetParam();
  Btree tree(&engine, bopts);
  ASSERT_TRUE(tree.Open().ok());

  std::map<uint64_t, std::string> model;
  Random rng(77);
  for (int i = 0; i < 500; ++i) {
    uint64_t key = rng.Uniform(10'000);
    std::string value = "v" + std::to_string(rng.Next() % 1000);
    ASSERT_TRUE(tree.Insert(key, value).ok());
    model[key] = value;
  }
  EXPECT_GT(tree.stats().splits, 5u);
  ASSERT_EQ(tree.Validate().ToString(), "OK");
  for (const auto& [key, value] : model) {
    std::vector<uint8_t> got;
    ASSERT_TRUE(tree.Get(key, &got).ok()) << key;
    EXPECT_EQ(Slice(got).ToString(), value);
  }
  std::vector<uint8_t> none;
  EXPECT_TRUE(tree.Get(999'999, &none).IsNotFound());
}

TEST_P(BtreeModeTest, EraseRemovesKeys) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  BtreeOptions bopts;
  bopts.max_page_bytes = 256;
  bopts.logical_splits = GetParam();
  Btree tree(&engine, bopts);
  ASSERT_TRUE(tree.Open().ok());
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Insert(k, "x").ok());
  }
  for (uint64_t k = 0; k < 100; k += 2) {
    ASSERT_TRUE(tree.Erase(k).ok());
  }
  EXPECT_TRUE(tree.Erase(0).IsNotFound());
  std::vector<uint8_t> v;
  for (uint64_t k = 0; k < 100; ++k) {
    if (k % 2 == 0) {
      EXPECT_TRUE(tree.Get(k, &v).IsNotFound()) << k;
    } else {
      EXPECT_TRUE(tree.Get(k, &v).ok()) << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BtreeModeTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "LogicalSplits"
                                             : "PhysiologicalSplits";
                         });

TEST(BtreeScanTest, RangeScansFollowLeafChain) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  BtreeOptions bopts;
  bopts.max_page_bytes = 160;  // many leaves
  Btree tree(&engine, bopts);
  ASSERT_TRUE(tree.Open().ok());
  for (uint64_t k = 0; k < 300; k += 3) {
    ASSERT_TRUE(tree.Insert(k, "v" + std::to_string(k)).ok());
  }
  ASSERT_EQ(tree.Validate().ToString(), "OK");

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> out;
  ASSERT_TRUE(tree.Scan(30, 10, &out).ok());
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 30 + 3 * i);
    EXPECT_EQ(Slice(out[i].second).ToString(),
              "v" + std::to_string(out[i].first));
  }
  // From a key between entries, and over the end of the tree.
  ASSERT_TRUE(tree.Scan(31, 3, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 33u);
  ASSERT_TRUE(tree.Scan(295, 100, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 297u);
  ASSERT_TRUE(tree.Scan(1000, 5, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(BtreeMergeTest, ErasureMergesAndRecyclesPages) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  BtreeOptions bopts;
  bopts.max_page_bytes = 200;
  Btree tree(&engine, bopts);
  ASSERT_TRUE(tree.Open().ok());
  for (uint64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(tree.Insert(k, "payload-value").ok());
  }
  uint64_t peak_pages = tree.live_pages();
  ASSERT_EQ(tree.Validate().ToString(), "OK");

  for (uint64_t k = 0; k < 380; ++k) {
    ASSERT_TRUE(tree.Erase(k).ok());
  }
  ASSERT_EQ(tree.Validate().ToString(), "OK");
  EXPECT_GT(tree.stats().merges, 0u);
  EXPECT_LT(tree.live_pages(), peak_pages);
  EXPECT_GT(tree.free_pages(), 0u);

  // Freed pages are recycled by later splits.
  uint64_t allocated_before = tree.allocated_pages();
  for (uint64_t k = 1000; k < 1400; ++k) {
    ASSERT_TRUE(tree.Insert(k, "payload-value").ok());
  }
  ASSERT_EQ(tree.Validate().ToString(), "OK");
  EXPECT_GT(tree.stats().pages_reused, 0u);
  EXPECT_LT(tree.allocated_pages() - allocated_before, 400u / 5);

  // Remaining keys still answer.
  std::vector<uint8_t> v;
  for (uint64_t k = 380; k < 400; ++k) {
    EXPECT_TRUE(tree.Get(k, &v).ok()) << k;
  }
  for (uint64_t k = 0; k < 380; ++k) {
    ASSERT_TRUE(tree.Get(k, &v).IsNotFound()) << k;
  }
}

TEST(BtreeMergeTest, RootCollapsesWhenTreeShrinks) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  BtreeOptions bopts;
  bopts.max_page_bytes = 160;
  Btree tree(&engine, bopts);
  ASSERT_TRUE(tree.Open().ok());
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.Insert(k, "x").ok());
  }
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.Erase(k).ok());
  }
  ASSERT_EQ(tree.Validate().ToString(), "OK");
  EXPECT_GT(tree.stats().root_collapses, 0u);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> out;
  ASSERT_TRUE(tree.Scan(0, 10, &out).ok());
  EXPECT_TRUE(out.empty());
  // The shrunken tree keeps working.
  ASSERT_TRUE(tree.Insert(5, "back").ok());
  std::vector<uint8_t> v;
  ASSERT_TRUE(tree.Get(5, &v).ok());
}

TEST(BtreeScanTest, ScansSurviveCrashRecovery) {
  EngineOptions eopts;
  eopts.purge_threshold_ops = 16;
  CrashHarness harness(eopts, 47);
  BtreeOptions bopts;
  bopts.max_page_bytes = 160;
  {
    Btree tree(&harness.engine(), bopts);
    ASSERT_TRUE(tree.Open().ok());
    for (uint64_t k = 0; k < 200; k += 2) {
      ASSERT_TRUE(tree.Insert(k, "s" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  Btree tree(&harness.engine(), bopts);
  ASSERT_TRUE(tree.Open().ok());
  ASSERT_EQ(tree.Validate().ToString(), "OK");  // chain intact
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> out;
  ASSERT_TRUE(tree.Scan(50, 25, &out).ok());
  ASSERT_EQ(out.size(), 25u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 50 + 2 * i);
  }
}

TEST(BtreeMergeTest, MergesSurviveCrashRecovery) {
  EngineOptions eopts;
  eopts.purge_threshold_ops = 16;
  eopts.checkpoint_interval_ops = 80;
  CrashHarness harness(eopts, 41);
  BtreeOptions bopts;
  bopts.max_page_bytes = 200;
  Random rng(41);
  std::map<uint64_t, bool> live;
  {
    Btree tree(&harness.engine(), bopts);
    ASSERT_TRUE(tree.Open().ok());
    for (uint64_t k = 0; k < 250; ++k) {
      ASSERT_TRUE(tree.Insert(k, "vv").ok());
      live[k] = true;
    }
    for (int i = 0; i < 180; ++i) {
      uint64_t k = rng.Uniform(250);
      if (live[k]) {
        ASSERT_TRUE(tree.Erase(k).ok());
        live[k] = false;
      }
    }
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  Btree tree(&harness.engine(), bopts);
  ASSERT_TRUE(tree.Open().ok());
  ASSERT_EQ(tree.Validate().ToString(), "OK");
  std::vector<uint8_t> v;
  for (const auto& [k, alive] : live) {
    if (alive) {
      EXPECT_TRUE(tree.Get(k, &v).ok()) << k;
    } else {
      EXPECT_TRUE(tree.Get(k, &v).IsNotFound()) << k;
    }
  }
}

// The headline crash property: a tree built with logical splits survives
// crashes at arbitrary points, because each structure modification is one
// atomic logged operation.
TEST(BtreeCrashTest, SurvivesCrashesMidLoad) {
  EngineOptions eopts;
  eopts.purge_threshold_ops = 16;
  eopts.checkpoint_interval_ops = 50;
  CrashHarness harness(eopts, 9);

  BtreeOptions bopts;
  bopts.max_page_bytes = 192;
  std::map<uint64_t, std::string> model;
  Random rng(13);

  {
    Btree tree(&harness.engine(), bopts);
    ASSERT_TRUE(tree.Open().ok());
    for (int i = 0; i < 150; ++i) {
      uint64_t key = rng.Uniform(5'000);
      ASSERT_TRUE(tree.Insert(key, "a").ok());
      model[key] = "a";
    }
  }

  for (int round = 0; round < 4; ++round) {
    // Force the log (but flush nothing): the crash loses all cached
    // state, recovery must rebuild it purely by redo, and the model
    // stays exact because every logged operation survives.
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
    harness.Crash();
    RecoveryStats rstats;
    ASSERT_TRUE(harness.Recover(&rstats).ok());
    ASSERT_TRUE(harness.VerifyAgainstReference().ok());

    Btree tree(&harness.engine(), bopts);
    ASSERT_TRUE(tree.Open().ok());
    ASSERT_EQ(tree.Validate().ToString(), "OK");
    // Everything whose insert reached the stable log must be present;
    // since VerifyAgainstReference passed, spot-check via the model for
    // keys inserted before the last flush (all earlier rounds are
    // durable because recovery flushed them).
    for (int i = 0; i < 100; ++i) {
      uint64_t key = rng.Uniform(5'000);
      std::string value = "r" + std::to_string(round);
      ASSERT_TRUE(tree.Insert(key, value).ok());
      model[key] = value;
    }
    ASSERT_EQ(tree.Validate().ToString(), "OK");
  }

  // Quiesce: everything is now durable; the model must match exactly.
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  Btree tree(&harness.engine(), bopts);
  ASSERT_TRUE(tree.Open().ok());
  for (const auto& [key, value] : model) {
    std::vector<uint8_t> got;
    ASSERT_TRUE(tree.Get(key, &got).ok()) << key;
    EXPECT_EQ(Slice(got).ToString(), value);
  }
}

}  // namespace
}  // namespace loglog
