#include <gtest/gtest.h>

#include "cache/cache_manager.h"
#include "ops/function_registry.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"

namespace loglog {
namespace {

struct Rig {
  SimulatedDisk disk;
  LogManager log{&disk.log()};
  CacheManager cm;
  Rig(GraphKind gk, FlushPolicy fp)
      : cm(&disk, &log, gk, fp, /*log_installs=*/true) {}

  Lsn Run(const OperationDesc& op) {
    std::vector<ObjectValue> reads;
    for (ObjectId r : op.reads) {
      ObjectValue v;
      EXPECT_TRUE(cm.GetValue(r, &v).ok());
      reads.push_back(std::move(v));
    }
    std::vector<ObjectValue> writes(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      ObjectValue v;
      if (cm.GetValue(op.writes[i], &v).ok()) writes[i] = std::move(v);
    }
    if (op.op_class != OpClass::kDelete) {
      EXPECT_TRUE(
          FunctionRegistry::Global().Apply(op, reads, &writes).ok());
    }
    LogRecord rec;
    rec.type = RecordType::kOperation;
    rec.op = op;
    Lsn lsn = log.Append(std::move(rec));
    EXPECT_TRUE(cm.ApplyResults(op, lsn, std::move(writes)).ok());
    return lsn;
  }
};

TEST(CacheManagerTest, GetValueCachesAndTracksVsi) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  rig.disk.store().Write(1, "stable", 5);
  ObjectValue v;
  ASSERT_TRUE(rig.cm.GetValue(1, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "stable");
  EXPECT_EQ(rig.disk.stats().object_reads, 1u);
  ASSERT_TRUE(rig.cm.GetValue(1, &v).ok());
  EXPECT_EQ(rig.disk.stats().object_reads, 1u);  // cached
  EXPECT_EQ(rig.cm.CurrentVsi(1), 5u);
  EXPECT_TRUE(rig.cm.GetValue(99, &v).IsNotFound());
}

TEST(CacheManagerTest, ApplySetsDirtyAndRsi) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  Lsn l1 = rig.Run(MakePhysicalWrite(1, "a"));
  EXPECT_EQ(rig.cm.CurrentVsi(1), l1);
  EXPECT_EQ(rig.cm.CurrentRsi(1), l1);
  Lsn l2 = rig.Run(MakeDelta(1, 0, "b"));
  EXPECT_EQ(rig.cm.CurrentVsi(1), l2);
  EXPECT_EQ(rig.cm.CurrentRsi(1), l1);  // rSI stays at first uninstalled
  EXPECT_EQ(rig.cm.table().dirty_count(), 1u);
  EXPECT_TRUE(rig.cm.CheckInvariants().ok());
}

TEST(CacheManagerTest, PurgeInstallsAndCleans) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  rig.Run(MakePhysicalWrite(1, "hello"));
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_EQ(rig.disk.store().StableVsi(1), 1u);
  EXPECT_EQ(rig.cm.CurrentRsi(1), kInvalidLsn);
  EXPECT_EQ(rig.cm.table().dirty_count(), 0u);
  // WAL: the operation was forced before the flush.
  EXPECT_EQ(rig.log.last_stable_lsn(), 1u);
  EXPECT_TRUE(rig.cm.PurgeOne().IsNotFound());
}

TEST(CacheManagerTest, WalForcesLogBeforeFlush) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  rig.Run(MakePhysicalWrite(1, "x"));
  EXPECT_EQ(rig.log.last_stable_lsn(), 0u);
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_GE(rig.log.last_stable_lsn(), 1u);
}

TEST(CacheManagerTest, IdentityWritesBreakUpAtomicFlushSets) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kIdentityWrites);
  // One operation writing two objects: W would need an atomic pair.
  OperationDesc op = MakeHashCombine(3, {1, 2}, 64, 5);
  op.writes = {3, 4};  // two blind outputs
  rig.disk.store().Write(1, "in1", 0);
  rig.disk.store().Write(2, "in2", 0);
  // HashCombine writes only writes[0]; build a custom two-output op via
  // the btree-style shape instead: use XorMerge into 3 and a second op
  // merging into one node through exposure.
  op = MakeXorMerge(3, {1, 2});
  rig.Run(op);
  OperationDesc op2 = MakeXorMerge(4, {1, 2});
  rig.Run(op2);
  // Two separate nodes; no identity writes needed.
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_EQ(rig.cm.stats().identity_writes, 0u);
}

TEST(CacheManagerTest, IdentityWritePeelsMultiObjectNode) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kIdentityWrites);
  rig.disk.store().Write(1, "src", 0);
  // A single logical op writing two objects (like a B-tree split).
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncAppWrite;  // writes[0] only, so craft manually below
  // Use a custom transform writing both outputs.
  FunctionRegistry::Global().Register(
      kFuncFirstCustom + 200,
      [](const OperationDesc&, const std::vector<ObjectValue>& reads,
         std::vector<ObjectValue>* writes) {
        (*writes)[0] = reads[0];
        (*writes)[1] = reads[0];
        return Status::OK();
      });
  op.func = kFuncFirstCustom + 200;
  op.reads = {1};
  op.writes = {2, 3};
  rig.Run(op);
  ASSERT_EQ(rig.cm.graph().Find(rig.cm.graph().MinimalNode())->vars.size(),
            2u);
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  // One identity write peeled one object; no multi-object atomic flush.
  EXPECT_EQ(rig.cm.stats().identity_writes, 1u);
  EXPECT_EQ(rig.disk.stats().atomic_multi_writes, 0u);
  // Drain: the identity-write node flushes the peeled object.
  while (!rig.cm.graph().empty()) ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_TRUE(rig.disk.store().Exists(2));
  EXPECT_TRUE(rig.disk.store().Exists(3));
  EXPECT_TRUE(rig.cm.CheckInvariants().ok());
}

TEST(CacheManagerTest, FlushTransactionLogsValuesAndQuiesces) {
  Rig rig(GraphKind::kW, FlushPolicy::kFlushTransaction);
  rig.disk.store().Write(1, "seed", 0);
  // Two ops whose writesets overlap -> one W node with two objects.
  rig.Run(MakeCopy(2, 1));
  OperationDesc both;
  FunctionRegistry::Global().Register(
      kFuncFirstCustom + 201,
      [](const OperationDesc&, const std::vector<ObjectValue>& reads,
         std::vector<ObjectValue>* writes) {
        (*writes)[0] = reads[0];
        (*writes)[1] = reads[0];
        return Status::OK();
      });
  both.op_class = OpClass::kLogical;
  both.func = kFuncFirstCustom + 201;
  both.reads = {1};
  both.writes = {2, 3};
  rig.Run(both);
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_EQ(rig.cm.stats().flush_txns, 1u);
  EXPECT_EQ(rig.disk.stats().quiesce_events, 1u);
  // Each object logged once plus written in place once.
  EXPECT_EQ(rig.cm.stats().flush_txn_values_logged, 2u);
  EXPECT_TRUE(rig.disk.store().Exists(2));
  EXPECT_TRUE(rig.disk.store().Exists(3));
}

TEST(CacheManagerTest, UnexposedObjectStaysDirtyAfterInstall) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  // Figure 7 shape: A writes {X=1, Y=2}; B reads X writes Z; C blind X.
  FunctionRegistry::Global().Register(
      kFuncFirstCustom + 202,
      [](const OperationDesc&, const std::vector<ObjectValue>&,
         std::vector<ObjectValue>* writes) {
        (*writes)[0] = {1};
        (*writes)[1] = {2};
        return Status::OK();
      });
  OperationDesc a;
  a.op_class = OpClass::kLogical;
  a.func = kFuncFirstCustom + 202;
  a.writes = {1, 2};
  rig.Run(a);
  rig.Run(MakeCopy(3, 1));              // B
  rig.Run(MakePhysicalWrite(1, "C"));   // C: blind write of X
  // Install B (minimal), then A's node: flushes only Y.
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_TRUE(rig.disk.store().Exists(2));   // Y flushed
  EXPECT_FALSE(rig.disk.store().Exists(1));  // X installed without flush
  const CachedObject* x = rig.cm.table().Find(1);
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->dirty);
  EXPECT_EQ(x->rsi, 3u);  // rSI advanced to C's lSI
  EXPECT_EQ(rig.cm.stats().installed_without_flush, 1u);
  // Finally C's node flushes X with C's value.
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  StoredObject sx;
  ASSERT_TRUE(rig.disk.store().Read(1, &sx).ok());
  EXPECT_EQ(Slice(sx.value).ToString(), "C");
}

TEST(CacheManagerTest, DeleteInstallErasesFromStableStore) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  rig.Run(MakeCreate(1, "x"));
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  ASSERT_TRUE(rig.disk.store().Exists(1));
  rig.Run(MakeDelete(1));
  EXPECT_FALSE(rig.cm.ObjectExists(1));
  ObjectValue v;
  EXPECT_TRUE(rig.cm.GetValue(1, &v).IsNotFound());
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_FALSE(rig.disk.store().Exists(1));
  EXPECT_EQ(rig.cm.table().Find(1), nullptr);  // left the object table
}

TEST(CacheManagerTest, CheckpointTruncatesLog) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  for (int i = 0; i < 10; ++i) {
    rig.Run(MakePhysicalWrite(1 + (i % 2), "value"));
  }
  while (!rig.cm.graph().empty()) ASSERT_TRUE(rig.cm.PurgeOne().ok());
  uint64_t before = rig.disk.log().retained_bytes();
  ASSERT_TRUE(rig.cm.Checkpoint().ok());
  EXPECT_LT(rig.disk.log().retained_bytes(), before);
  EXPECT_EQ(rig.cm.stats().checkpoints, 1u);
}

TEST(CacheManagerTest, EvictionDropsOnlyClean) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kNativeAtomic);
  rig.disk.store().Write(1, "c1", 1);
  rig.disk.store().Write(2, "c2", 2);
  ObjectValue v;
  ASSERT_TRUE(rig.cm.GetValue(1, &v).ok());
  ASSERT_TRUE(rig.cm.GetValue(2, &v).ok());
  rig.Run(MakePhysicalWrite(3, "dirty"));
  rig.cm.EvictTo(1);
  EXPECT_EQ(rig.cm.table().size(), 1u);
  EXPECT_NE(rig.cm.table().Find(3), nullptr);  // dirty survives
  rig.cm.EvictTo(0);
  EXPECT_EQ(rig.cm.table().size(), 1u);  // nothing clean left to evict
  EXPECT_EQ(rig.cm.stats().evictions, 2u);
}

TEST(CacheManagerTest, IdentityPolicyUnderWFallsBackToAtomic) {
  // Under W a blind identity write merges into the node owning the
  // object (writeset overlap), so peeling can never shrink vars; the CM
  // falls back to the native atomic flush (Section 6: once objects must
  // be flushed together in W, "there is no way to flush them
  // separately").
  Rig rig(GraphKind::kW, FlushPolicy::kIdentityWrites);
  rig.disk.store().Write(1, "src", 0);
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncFirstCustom + 200;  // registered two-output transform
  FunctionRegistry::Global().Register(
      op.func, [](const OperationDesc&, const std::vector<ObjectValue>& r,
                  std::vector<ObjectValue>* w) {
        (*w)[0] = r[0];
        (*w)[1] = r[0];
        return Status::OK();
      });
  op.reads = {1};
  op.writes = {2, 3};
  rig.Run(op);
  ASSERT_TRUE(rig.cm.PurgeOne().ok());
  EXPECT_EQ(rig.cm.stats().identity_writes, 0u);
  EXPECT_EQ(rig.disk.stats().atomic_multi_writes, 1u);
}

TEST(CacheManagerTest, InstallRecordsOptional) {
  // With install logging off the CM stays correct; only analysis-time
  // rSI precision is lost (tested end-to-end by bench_install_logging).
  SimulatedDisk disk;
  LogManager log(&disk.log());
  CacheManager cm(&disk, &log, GraphKind::kRefined,
                  FlushPolicy::kNativeAtomic, /*log_installs=*/false);
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.op = MakePhysicalWrite(1, "x");
  Lsn lsn = log.Append(std::move(rec));
  ASSERT_TRUE(cm.ApplyResults(MakePhysicalWrite(1, "x"), lsn, {{'x'}}).ok());
  ASSERT_TRUE(cm.PurgeOne().ok());
  // Only the operation record reached the log — no install record.
  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(LogManager::ReadStable(disk.log(), &records, &torn, &next,
                                     &valid_end)
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, RecordType::kOperation);
}

TEST(CacheManagerTest, FlushAllDrainsEverything) {
  Rig rig(GraphKind::kRefined, FlushPolicy::kIdentityWrites);
  rig.disk.store().Write(1, "s", 0);
  for (int i = 0; i < 5; ++i) rig.Run(MakeCopy(2 + i, 1));
  rig.Run(MakeDelete(2));
  ASSERT_TRUE(rig.cm.FlushAll().ok());
  EXPECT_EQ(rig.cm.table().dirty_count(), 0u);
  EXPECT_TRUE(rig.cm.graph().empty());
  EXPECT_FALSE(rig.disk.store().Exists(2));
  for (int i = 1; i < 5; ++i) EXPECT_TRUE(rig.disk.store().Exists(2 + i));
}

}  // namespace
}  // namespace loglog
