#include <gtest/gtest.h>

#include <limits>

#include "common/coding.h"
#include "common/crc32.h"
#include "obs/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace loglog {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  EXPECT_TRUE(Status::OK().ok());
  Status nf = Status::NotFound("missing");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: missing");
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fn = [](bool fail) -> Status {
    LOGLOG_RETURN_IF_ERROR(fail ? Status::IoError("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_TRUE(fn(true).IsIoError());
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  StatusOr<int> bad(Status::NotFound("no"));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(SliceTest, BasicsAndComparison) {
  std::string s = "hello";
  Slice a(s);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.ToString(), "hello");
  Slice b("hello");
  EXPECT_EQ(a, b);
  b.RemovePrefix(1);
  EXPECT_EQ(b.ToString(), "ello");
  EXPECT_NE(a, b);
  EXPECT_TRUE(Slice().empty());
}

TEST(CodingTest, FixedRoundTrip) {
  std::vector<uint8_t> buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Slice s(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&s, &v32).ok());
  ASSERT_TRUE(GetFixed64(&s, &v64).ok());
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  EXPECT_TRUE(s.empty());
}

class VarintRoundTrip : public testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, GetParam());
  EXPECT_EQ(buf.size(), VarintLength(GetParam()));
  Slice s(buf);
  uint64_t v;
  ASSERT_TRUE(GetVarint64(&s, &v).ok());
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(s.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    testing::Values(0u, 1u, 127u, 128u, 300u, 16383u, 16384u, 1u << 30,
                    (1ull << 35) + 7, std::numeric_limits<uint64_t>::max()));

TEST(CodingTest, TruncatedInputsFail) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1u << 20);
  buf.pop_back();
  Slice s(buf);
  uint64_t v;
  EXPECT_TRUE(GetVarint64(&s, &v).IsCorruption());

  std::vector<uint8_t> buf2 = {0x01, 0x02};
  Slice s2(buf2);
  uint32_t v32;
  EXPECT_TRUE(GetFixed32(&s2, &v32).IsCorruption());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::vector<uint8_t> buf;
  PutLengthPrefixed(&buf, "abc");
  PutLengthPrefixed(&buf, "");
  Slice s(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixed(&s, &a).ok());
  ASSERT_TRUE(GetLengthPrefixed(&s, &b).ok());
  EXPECT_EQ(a.ToString(), "abc");
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedFails) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 100);  // claims 100 bytes but provides none
  Slice s(buf);
  Slice v;
  EXPECT_TRUE(GetLengthPrefixed(&s, &v).IsCorruption());
}

TEST(Crc32Test, KnownVectorAndProperties) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c(Slice("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(Slice("")), 0u);
  // Extension property.
  uint32_t whole = Crc32c(Slice("hello world"));
  uint32_t ext = Crc32cExtend(Crc32c(Slice("hello ")), Slice("world"));
  EXPECT_EQ(whole, ext);
  // Sensitivity.
  EXPECT_NE(Crc32c(Slice("hello")), Crc32c(Slice("hellp")));
}

TEST(RandomTest, DeterministicAndBounded) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    uint64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  EXPECT_EQ(Random(9).Bytes(32).size(), 32u);
  EXPECT_EQ(Random(9).Bytes(32), Random(9).Bytes(32));
}

TEST(Mix64Test, DeterministicAndDispersive) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(HistogramTest, StatsAndPercentiles) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.Percentile(0.5), 50u);
  EXPECT_EQ(h.Percentile(0.99), 99u);
  EXPECT_EQ(h.CountOf(42), 1u);
  EXPECT_EQ(h.CountOf(1000), 0u);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

}  // namespace
}  // namespace loglog
