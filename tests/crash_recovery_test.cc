#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/crash_harness.h"
#include "sim/workload.h"

namespace loglog {
namespace {

// The central recoverability property (Theorems 1-3): after a crash at an
// arbitrary point, Recover() + FlushAll() leaves the stable database equal
// to the sequential execution of the stable log — for every combination
// of logging mode, write graph, flush policy and REDO test.

struct MatrixParam {
  LoggingMode logging;
  GraphKind graph;
  FlushPolicy flush;
  RedoTestKind redo;
  uint64_t seed;
  /// Adaptive logging policy (src/adapt/) on top of the base mode, with
  /// an optional recovery budget driving proactive W_IP installs.
  bool adaptive = false;
  uint64_t budget = 0;
};

std::string ParamName(const testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string s;
  s += p.logging == LoggingMode::kLogical ? "Logical" : "Physio";
  s += p.graph == GraphKind::kRefined ? "RW" : "W";
  switch (p.flush) {
    case FlushPolicy::kNativeAtomic:
      s += "Native";
      break;
    case FlushPolicy::kIdentityWrites:
      s += "Ident";
      break;
    case FlushPolicy::kFlushTransaction:
      s += "Ftxn";
      break;
    case FlushPolicy::kShadow:
      s += "Shadow";
      break;
  }
  switch (p.redo) {
    case RedoTestKind::kAlways:
      s += "Always";
      break;
    case RedoTestKind::kVsi:
      s += "Vsi";
      break;
    case RedoTestKind::kRsiGeneralized:
      s += "Rsi";
      break;
    case RedoTestKind::kRsiFixpoint:
      s += "Fix";
      break;
  }
  if (p.adaptive) {
    s += p.budget > 0 ? "AdaptBudget" : "Adapt";
  }
  s += "S" + std::to_string(p.seed);
  return s;
}

// Tight thresholds so the mixed workload actually flips classes: the
// matrix must cover histories where W_L, promoted W_PL/W_P and decision
// records interleave with crashes.
AdaptivePolicyOptions MatrixAdaptiveOptions() {
  AdaptivePolicyOptions a;
  a.enabled = true;
  a.hot_interval_writes = 8.0;
  a.cold_interval_writes = 24.0;
  a.small_value_bytes = 32;
  a.large_value_bytes = 96;
  a.max_chain_depth = 16;
  a.decision_cooldown_writes = 4;
  return a;
}

class CrashMatrixTest : public testing::TestWithParam<MatrixParam> {};

TEST_P(CrashMatrixTest, RecoversAtRandomCrashPoints) {
  const MatrixParam& p = GetParam();
  EngineOptions opts;
  opts.logging_mode = p.logging;
  opts.graph_kind = p.graph;
  opts.flush_policy = p.flush;
  opts.redo_test = p.redo;
  opts.purge_threshold_ops = 24;
  opts.checkpoint_interval_ops = 60;
  if (p.adaptive) {
    opts.adaptive = MatrixAdaptiveOptions();
    opts.recovery_budget = p.budget;
  }

  CrashHarness harness(opts, p.seed);
  MixedWorkloadOptions wopts;
  wopts.seed = p.seed * 7919 + 1;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }

  // Several crash/recover rounds within one history.
  for (int round = 0; round < 3; ++round) {
    int ops = 40 + static_cast<int>(harness.rng().Uniform(80));
    for (int i = 0; i < ops; ++i) {
      Status st = harness.Execute(workload.Next());
      // NotFound is legitimate across crashes: an operation may name a
      // temporary whose creation never reached the stable log and was
      // therefore lost with the crash.
      ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
    }
    harness.Crash();
    RecoveryStats stats;
    Status st = harness.Recover(&stats);
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = harness.VerifyAgainstReference();
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.ToString()
                         << "\n"
                         << stats.ToString();
    ASSERT_TRUE(harness.engine().cache().CheckInvariants().ok());
  }
}

std::vector<MatrixParam> BuildMatrix() {
  std::vector<MatrixParam> out;
  for (LoggingMode lm : {LoggingMode::kLogical, LoggingMode::kPhysiological}) {
    for (GraphKind gk : {GraphKind::kRefined, GraphKind::kW}) {
      for (FlushPolicy fp :
           {FlushPolicy::kNativeAtomic, FlushPolicy::kIdentityWrites,
            FlushPolicy::kFlushTransaction, FlushPolicy::kShadow}) {
        for (RedoTestKind rt :
             {RedoTestKind::kAlways, RedoTestKind::kVsi,
              RedoTestKind::kRsiGeneralized, RedoTestKind::kRsiFixpoint}) {
          for (uint64_t seed : {1u, 2u}) {
            out.push_back({lm, gk, fp, rt, seed});
          }
        }
      }
    }
  }
  // Adaptive-policy configurations (appended, not multiplied): the
  // cost model only reclassifies W_L traffic, so the base mode is
  // logical; sweep graphs, flush policies, REDO tests and the budget.
  for (uint64_t seed : {1u, 2u}) {
    out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                   FlushPolicy::kIdentityWrites,
                   RedoTestKind::kRsiGeneralized, seed, true, 0});
    out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                   FlushPolicy::kIdentityWrites,
                   RedoTestKind::kRsiGeneralized, seed, true, 32});
  }
  out.push_back({LoggingMode::kLogical, GraphKind::kW,
                 FlushPolicy::kIdentityWrites,
                 RedoTestKind::kRsiGeneralized, 1, true, 0});
  out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                 FlushPolicy::kIdentityWrites, RedoTestKind::kVsi, 1, true,
                 32});
  out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                 FlushPolicy::kIdentityWrites, RedoTestKind::kAlways, 1,
                 true, 0});
  out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                 FlushPolicy::kIdentityWrites, RedoTestKind::kRsiFixpoint,
                 1, true, 32});
  // Non-identity flush policies take EnforceRecoveryBudget's purge
  // fallback instead of proactive W_IPs.
  out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                 FlushPolicy::kFlushTransaction,
                 RedoTestKind::kRsiGeneralized, 1, true, 32});
  out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                 FlushPolicy::kShadow, RedoTestKind::kRsiGeneralized, 1,
                 true, 32});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, CrashMatrixTest,
                         testing::ValuesIn(BuildMatrix()), ParamName);

}  // namespace
}  // namespace loglog
