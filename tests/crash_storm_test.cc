// Crash-storm soak runner. Unlike the rest of the suite this binary owns
// its main() so the iteration count is tunable:
//
//   loglog_storm_test --storm-iters=N     (or env LOGLOG_STORM_ITERS=N)
//
// The short default (25 iterations x 12 configurations = 300 randomized
// crash/fault injections) runs as the tier-1 `crash_storm_short` test;
// `ctest -C soak` runs the long configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/abort_storm.h"
#include "sim/crash_storm.h"
#include "sim/failover_storm.h"

namespace loglog {
namespace {

int g_storm_iters = 25;

// Where failing configs leave their black box. CI points this at the
// artifact directory via LOGLOG_STORM_ARTIFACTS so a red storm uploads
// its flight-recorder tail; locally it lands in the gtest temp dir.
std::string StormArtifactPath(const std::string& config_name) {
  std::string dir;
  if (const char* env = std::getenv("LOGLOG_STORM_ARTIFACTS")) {
    dir = env;
  } else {
    dir = testing::TempDir();
  }
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + "storm-" + config_name + ".blackbox";
}

struct StormConfig {
  const char* name;
  LoggingMode logging;
  GraphKind graph;
  FlushPolicy flush;
  RedoTestKind redo;
  uint64_t seed;
  /// Redo worker threads during every recovery of the storm (1 = serial).
  int redo_threads = 1;
  /// WAL batching policy under fire (group commit coalesces forces).
  ForcePolicy force_policy = ForcePolicy::kImmediate;
  /// Adaptive logging policy: per-write class promotion plus (budget > 0)
  /// proactive W_IP installs, soaked against the same fault mix.
  bool adaptive = false;
  uint64_t budget = 0;
  /// Storage backend: kLogStore configs serve every post-recovery read
  /// from the log index (the store stays empty), so the verification
  /// exercises the rebuild-and-read path instead of the store compare.
  StorageBackend backend = StorageBackend::kDualWrite;
  /// Log-store compaction cadence in ops (0 = none): compaction passes
  /// run inside the fault-armed bursts, racing crashes and torn tails.
  uint64_t compact_every = 0;
};

// Two logging modes x all four flush policies, with graph kinds, redo
// tests, redo parallelism and force policies varied across the grid so
// every enum value is under fire. The parallel-redo configs soak the
// worker pool against crash faults, torn tails, bit rot and re-crashed
// recoveries — anything that diverges from the serial path fails the
// post-recovery verification.
constexpr StormConfig kConfigs[] = {
    {"LogicalNativeAtomic", LoggingMode::kLogical, GraphKind::kRefined,
     FlushPolicy::kNativeAtomic, RedoTestKind::kRsiGeneralized, 1001},
    {"LogicalIdentityWrites", LoggingMode::kLogical, GraphKind::kRefined,
     FlushPolicy::kIdentityWrites, RedoTestKind::kRsiFixpoint, 1002,
     /*redo_threads=*/4},
    {"LogicalFlushTransaction", LoggingMode::kLogical, GraphKind::kW,
     FlushPolicy::kFlushTransaction, RedoTestKind::kRsiGeneralized, 1003,
     /*redo_threads=*/4, ForcePolicy::kGroup},
    {"LogicalShadow", LoggingMode::kLogical, GraphKind::kRefined,
     FlushPolicy::kShadow, RedoTestKind::kVsi, 1004},
    {"PhysiologicalNativeAtomic", LoggingMode::kPhysiological,
     GraphKind::kRefined, FlushPolicy::kNativeAtomic,
     RedoTestKind::kRsiGeneralized, 1005, /*redo_threads=*/1,
     ForcePolicy::kSizeThreshold},
    {"PhysiologicalIdentityWrites", LoggingMode::kPhysiological,
     GraphKind::kW, FlushPolicy::kIdentityWrites, RedoTestKind::kVsi,
     1006, /*redo_threads=*/2},
    {"PhysiologicalFlushTransaction", LoggingMode::kPhysiological,
     GraphKind::kRefined, FlushPolicy::kFlushTransaction,
     RedoTestKind::kRsiFixpoint, 1007, /*redo_threads=*/4,
     ForcePolicy::kGroup},
    {"PhysiologicalShadow", LoggingMode::kPhysiological,
     GraphKind::kRefined, FlushPolicy::kShadow,
     RedoTestKind::kRsiGeneralized, 1008},
    {"AdaptiveIdentityWrites", LoggingMode::kLogical, GraphKind::kRefined,
     FlushPolicy::kIdentityWrites, RedoTestKind::kRsiGeneralized, 1009,
     /*redo_threads=*/4, ForcePolicy::kGroup, /*adaptive=*/true,
     /*budget=*/32},
    {"AdaptiveNoBudget", LoggingMode::kLogical, GraphKind::kW,
     FlushPolicy::kIdentityWrites, RedoTestKind::kRsiFixpoint, 1010,
     /*redo_threads=*/2, ForcePolicy::kImmediate, /*adaptive=*/true,
     /*budget=*/0},
    // Log-as-database: no store writes ever; recovery rebuilds the log
    // index and verification reads everything back through it (including
    // cold-tier faulted reads once truncation has spilled segments).
    {"LogStore", LoggingMode::kLogical, GraphKind::kRefined,
     FlushPolicy::kNativeAtomic, RedoTestKind::kVsi, 1011,
     /*redo_threads=*/2, ForcePolicy::kImmediate, /*adaptive=*/false,
     /*budget=*/0, StorageBackend::kLogStore},
    // Same, with the background compactor racing the crash/fault mix:
    // W_IP rewrite batches and their index republishes must be crash-
    // consistent at every interleaving.
    {"LogStoreCompaction", LoggingMode::kLogical, GraphKind::kW,
     FlushPolicy::kNativeAtomic, RedoTestKind::kRsiGeneralized, 1012,
     /*redo_threads=*/1, ForcePolicy::kGroup, /*adaptive=*/false,
     /*budget=*/0, StorageBackend::kLogStore, /*compact_every=*/24},
};

class CrashStormTest : public testing::TestWithParam<StormConfig> {};

TEST_P(CrashStormTest, SurvivesTheStorm) {
  const StormConfig& cfg = GetParam();
  CrashStormOptions options;
  options.engine.logging_mode = cfg.logging;
  options.engine.graph_kind = cfg.graph;
  options.engine.flush_policy = cfg.flush;
  options.engine.redo_test = cfg.redo;
  options.engine.recovery.redo_threads = cfg.redo_threads;
  options.engine.wal_force_policy = cfg.force_policy;
  // Purge aggressively so flushes (and their fault sites) happen inside
  // the fault-armed bursts, not only in the post-disarm verification.
  options.engine.purge_threshold_ops = 12;
  options.engine.backend = cfg.backend;
  options.engine.logstore.compact_interval_ops = cfg.compact_every;
  if (cfg.adaptive) {
    options.engine.adaptive.enabled = true;
    options.engine.adaptive.hot_interval_writes = 8.0;
    options.engine.adaptive.cold_interval_writes = 24.0;
    options.engine.adaptive.small_value_bytes = 32;
    options.engine.adaptive.large_value_bytes = 96;
    options.engine.adaptive.decision_cooldown_writes = 4;
    options.engine.recovery_budget = cfg.budget;
  }
  options.seed = cfg.seed;
  options.iterations = g_storm_iters;
  options.blackbox_on_failure = StormArtifactPath(cfg.name);

  CrashStormStats stats;
  Status st = RunCrashStorm(options, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n  " << stats.ToString();
  SCOPED_TRACE(stats.ToString());
  std::printf("[ STORM    ] %s: %s\n", cfg.name, stats.ToString().c_str());
  // Every iteration crashed at least once and verified after recovery.
  EXPECT_EQ(stats.iterations, static_cast<uint64_t>(g_storm_iters));
  EXPECT_EQ(stats.verify_passes, stats.iterations);
  EXPECT_GE(stats.crashes, stats.iterations);
  EXPECT_GE(stats.recoveries, stats.iterations);
  // The fault mix actually bit: over a whole storm at least one armed
  // fault must have fired (they are randomized per iteration). Too few
  // iterations may legitimately arm or fire nothing, so this sanity
  // check only holds at scale.
  if (g_storm_iters >= 10) {
    EXPECT_GT(stats.faults_armed, 0u);
    EXPECT_GT(stats.faults_fired, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Storm, CrashStormTest,
                         testing::ValuesIn(kConfigs),
                         [](const testing::TestParamInfo<StormConfig>& i) {
                           return std::string(i.param.name);
                         });

struct AbortStormConfig {
  const char* name;
  uint64_t seed;
  /// Interleaving degree (transactions open at once).
  int max_txns;
  int abort_inject_percent;
  int explicit_abort_percent;
  int rollback_crash_percent;
  int commit_torn_percent;
};

// The (interleaving, injected-abort, crash-point) matrix: each axis gets
// a config that leans on it hard, plus one with everything at once. Every
// iteration of every config ends in a crash, a recovery, the
// repeat-history verification and the committed-only serial oracle.
constexpr AbortStormConfig kAbortConfigs[] = {
    // Aborts and rollbacks but no crash faults: compensation itself.
    {"CleanAborts", 3001, 3, 60, 40, 0, 0},
    // Crash at a random depth of (almost) every rollback, runtime or
    // recovery loser pass; resumed rollback must not double-compensate.
    {"RollbackCrashes", 3002, 4, 60, 30, 100, 0},
    // Commit records appended but never forced: the torn-commit window.
    {"TornCommits", 3003, 4, 40, 10, 0, 100},
    // Wide interleaving drives strict-2PL conflict aborts.
    {"WideInterleave", 3004, 8, 30, 25, 25, 15},
    // Everything at once.
    {"FullStorm", 3005, 6, 60, 25, 50, 35},
};

class AbortStormTest : public testing::TestWithParam<AbortStormConfig> {};

TEST_P(AbortStormTest, EquivalentToSerialOracle) {
  const AbortStormConfig& cfg = GetParam();
  AbortStormOptions options;
  // Purge aggressively so installs land inside transactional bursts (the
  // storm forces native-atomic installation; see AbortStormOptions).
  options.engine.purge_threshold_ops = 12;
  options.seed = cfg.seed;
  options.iterations = g_storm_iters;
  options.max_txns = cfg.max_txns;
  options.abort_inject_percent = cfg.abort_inject_percent;
  options.explicit_abort_percent = cfg.explicit_abort_percent;
  options.rollback_crash_percent = cfg.rollback_crash_percent;
  options.commit_torn_percent = cfg.commit_torn_percent;
  options.blackbox_on_failure =
      StormArtifactPath(std::string("abort-") + cfg.name);

  AbortStormStats stats;
  Status st = RunAbortStorm(options, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n  " << stats.ToString();
  std::printf("[ STORM    ] Abort/%s: %s\n", cfg.name,
              stats.ToString().c_str());
  EXPECT_EQ(stats.iterations, static_cast<uint64_t>(g_storm_iters));
  // Both verifications ran after every recovery.
  EXPECT_EQ(stats.verify_passes, stats.iterations);
  EXPECT_EQ(stats.oracle_passes, stats.iterations);
  EXPECT_GE(stats.crashes, stats.iterations);
  EXPECT_GE(stats.recoveries, stats.iterations);
  EXPECT_GT(stats.txns_begun, 0u);
  if (g_storm_iters >= 10) {
    // At scale the mix must actually bite: commits, rollbacks, and
    // losers for the recovery pass.
    EXPECT_GT(stats.txns_committed, 0u);
    EXPECT_GT(stats.txns_rolled_back, 0u);
    EXPECT_GT(stats.clrs_logged, 0u);
    EXPECT_GT(stats.loser_txns, 0u);
    if (cfg.rollback_crash_percent >= 100) {
      EXPECT_GT(stats.rollback_crashes, 0u);
    }
    if (cfg.commit_torn_percent >= 100) {
      EXPECT_GT(stats.torn_commits, 0u);
    }
    if (options.standby_audit_every > 0 &&
        g_storm_iters >= options.standby_audit_every) {
      EXPECT_GT(stats.standby_audits, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Storm, AbortStormTest,
                         testing::ValuesIn(kAbortConfigs),
                         [](const testing::TestParamInfo<AbortStormConfig>& i) {
                           return std::string(i.param.name);
                         });

// Replication counterpart: primary-crash -> failover -> re-seed rounds
// with randomized channel faults, scaled from the same iteration knob
// (every ~5 storm iterations buys one full failover round).
TEST(FailoverStormTest, SurvivesFailoverRounds) {
  FailoverStormOptions options;
  options.engine.purge_threshold_ops = 12;
  // Install records would interleave with the shipped stream mid-burst;
  // the standby handles them, but keeping the primary's log purely
  // operational makes the storm's divergence audit reading simpler.
  options.engine.log_installs = false;
  options.standby.redo_threads = 2;
  options.standby.parallel_apply_threshold = 24;
  options.seed = 2026;
  options.rounds = std::clamp(g_storm_iters / 5, 2, 64);
  options.blackbox_on_failure = StormArtifactPath("failover");

  FailoverStormStats stats;
  Status st = RunFailoverStorm(options, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString() << "\n  " << stats.ToString();
  std::printf("[ STORM    ] Failover: %s\n", stats.ToString().c_str());
  EXPECT_EQ(stats.rounds, static_cast<uint64_t>(options.rounds));
  EXPECT_EQ(stats.promotions, stats.rounds);
  EXPECT_EQ(stats.reseeds, stats.rounds);
  EXPECT_EQ(stats.audits_passed, stats.rounds);
  EXPECT_EQ(stats.channel_faults_armed, stats.rounds);
  EXPECT_GT(stats.rto_us_max, 0u);
}

}  // namespace
}  // namespace loglog

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  if (const char* env = std::getenv("LOGLOG_STORM_ITERS")) {
    loglog::g_storm_iters = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--storm-iters=";
    if (arg.rfind(prefix, 0) == 0) {
      loglog::g_storm_iters = std::atoi(arg.c_str() + prefix.size());
    }
  }
  if (loglog::g_storm_iters <= 0) loglog::g_storm_iters = 25;
  return RUN_ALL_TESTS();
}
