#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace loglog {
namespace {

// RFC 3720-style known vectors for CRC-32C, plus empty/zero cases. Every
// kernel must reproduce these exactly — the log format depends on it.
TEST(Crc32Test, KnownVectors) {
  // "123456789" is the classic CRC check string: CRC-32C = 0xe3069283.
  const std::string check = "123456789";
  EXPECT_EQ(Crc32c(Slice(check)), 0xe3069283u);
  EXPECT_EQ(Crc32c(Slice()), 0u);

  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(Slice(zeros.data(), zeros.size())), 0x8a9136aau);
  std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(Crc32c(Slice(ones.data(), ones.size())), 0x62a8ab43u);
}

TEST(Crc32Test, EveryKernelMatchesKnownVectors) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32cExtendScalar(0, Slice(check)), 0xe3069283u);
  EXPECT_EQ(Crc32cExtendSliceBy8(0, Slice(check)), 0xe3069283u);
  if (Crc32cHardwareAvailable()) {
    EXPECT_EQ(Crc32cExtendHardware(0, Slice(check)), 0xe3069283u);
  }
}

// Exhaustive lengths 0..4096 at several buffer offsets: scalar is the
// reference, slice-by-8 and (when present) the hardware path must agree
// bit-for-bit. Unaligned starts exercise the head-alignment loops.
TEST(Crc32Test, KernelsAgreeAllLengthsAndOffsets) {
  std::mt19937_64 rng(20260808);
  std::vector<uint8_t> buf(4096 + 16);
  for (auto& b : buf) b = static_cast<uint8_t>(rng());

  const bool hw = Crc32cHardwareAvailable();
  for (size_t offset : {0u, 1u, 3u, 7u, 8u, 13u}) {
    for (size_t len = 0; len <= 4096; ++len) {
      Slice data(buf.data() + offset, len);
      uint32_t want = Crc32cExtendScalar(0, data);
      ASSERT_EQ(Crc32cExtendSliceBy8(0, data), want)
          << "slice_by_8 mismatch at offset=" << offset << " len=" << len;
      if (hw) {
        ASSERT_EQ(Crc32cExtendHardware(0, data), want)
            << "hardware mismatch at offset=" << offset << " len=" << len;
      }
      ASSERT_EQ(Crc32c(data), want)
          << "dispatch mismatch at offset=" << offset << " len=" << len;
    }
  }
}

// Extend-chaining must equal the one-shot CRC for arbitrary split points,
// with seeds carried across kernels (a log written on a machine with the
// hardware path must verify on one without it, and vice versa).
TEST(Crc32Test, ExtendChainingEquivalence) {
  std::mt19937_64 rng(77);
  std::vector<uint8_t> buf(4096);
  for (auto& b : buf) b = static_cast<uint8_t>(rng());

  const bool hw = Crc32cHardwareAvailable();
  for (int iter = 0; iter < 200; ++iter) {
    size_t len = rng() % (buf.size() + 1);
    Slice whole(buf.data(), len);
    uint32_t want = Crc32cExtendScalar(0, whole);

    // Random 3-way split, each piece hashed by a randomly chosen kernel.
    size_t a = len == 0 ? 0 : rng() % (len + 1);
    size_t b = len == 0 ? 0 : a + rng() % (len - a + 1);
    uint32_t crc = 0;
    const Slice parts[3] = {Slice(buf.data(), a), Slice(buf.data() + a, b - a),
                            Slice(buf.data() + b, len - b)};
    for (const Slice& part : parts) {
      switch (rng() % (hw ? 3 : 2)) {
        case 0:
          crc = Crc32cExtendScalar(crc, part);
          break;
        case 1:
          crc = Crc32cExtendSliceBy8(crc, part);
          break;
        default:
          crc = Crc32cExtendHardware(crc, part);
          break;
      }
    }
    ASSERT_EQ(crc, want) << "chained mismatch len=" << len << " a=" << a
                         << " b=" << b;
    ASSERT_EQ(Crc32cExtend(0, whole), want);
  }
}

TEST(Crc32Test, ActiveKernelIsConsistent) {
  Crc32cKernel active = Crc32cActiveKernel();
  if (Crc32cHardwareAvailable()) {
    EXPECT_EQ(active, Crc32cKernel::kHardware);
  } else {
    EXPECT_EQ(active, Crc32cKernel::kSliceBy8);
  }
  EXPECT_NE(std::string(Crc32cKernelName(active)), "unknown");
  EXPECT_NE(std::string(Crc32cKernelName(Crc32cKernel::kScalar)), "unknown");
}

}  // namespace
}  // namespace loglog
