#include <gtest/gtest.h>

#include "domains/dataflow/dataflow.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

TEST(DataflowTest, FormulasEvaluateAndPropagate) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  DataflowGraph graph(&engine);
  ASSERT_TRUE(graph.Open().ok());

  ASSERT_TRUE(graph.DefineInput(1, 10).ok());
  ASSERT_TRUE(graph.DefineInput(2, 20).ok());
  ASSERT_TRUE(graph.DefineInput(3, 5).ok());
  ASSERT_TRUE(
      graph.DefineDerived(10, CellFormula::kSum, {1, 2}).ok());       // 30
  ASSERT_TRUE(
      graph.DefineDerived(11, CellFormula::kMin, {10, 3}).ok());      // 5
  ASSERT_TRUE(
      graph.DefineDerived(12, CellFormula::kProduct, {10, 11}).ok()); // 150

  int64_t v;
  ASSERT_TRUE(graph.Value(10, &v).ok());
  EXPECT_EQ(v, 30);
  ASSERT_TRUE(graph.Value(11, &v).ok());
  EXPECT_EQ(v, 5);
  ASSERT_TRUE(graph.Value(12, &v).ok());
  EXPECT_EQ(v, 150);
  ASSERT_TRUE(graph.Audit().ok());

  // One input change cascades through the whole graph.
  ASSERT_TRUE(graph.SetInput(1, 100).ok());
  ASSERT_TRUE(graph.Value(10, &v).ok());
  EXPECT_EQ(v, 120);
  ASSERT_TRUE(graph.Value(11, &v).ok());
  EXPECT_EQ(v, 5);
  ASSERT_TRUE(graph.Value(12, &v).ok());
  EXPECT_EQ(v, 600);
  ASSERT_TRUE(graph.Audit().ok());

  ASSERT_TRUE(graph.SetInput(3, 1000).ok());
  ASSERT_TRUE(graph.Value(11, &v).ok());
  EXPECT_EQ(v, 120);
  ASSERT_TRUE(graph.Value(12, &v).ok());
  EXPECT_EQ(v, 14400);
}

TEST(DataflowTest, DefinitionErrors) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  DataflowGraph graph(&engine);
  ASSERT_TRUE(graph.Open().ok());
  ASSERT_TRUE(graph.DefineInput(1, 1).ok());
  EXPECT_TRUE(graph.DefineInput(1, 2).IsInvalidArgument());
  EXPECT_TRUE(graph.DefineDerived(2, CellFormula::kSum, {9})
                  .IsInvalidArgument());
  EXPECT_TRUE(
      graph.DefineDerived(3, CellFormula::kSum, {}).IsInvalidArgument());
  EXPECT_TRUE(graph.SetInput(99, 1).IsInvalidArgument());
}

TEST(DataflowTest, RecomputationLogsOnlyIdentifiers) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  DataflowGraph graph(&engine);
  ASSERT_TRUE(graph.Open().ok());
  for (uint32_t c = 0; c < 8; ++c) {
    ASSERT_TRUE(graph.DefineInput(c, c).ok());
  }
  ASSERT_TRUE(graph.DefineDerived(100, CellFormula::kSum,
                                  {0, 1, 2, 3, 4, 5, 6, 7})
                  .ok());
  uint64_t before = engine.stats().op_log_bytes;
  ASSERT_TRUE(graph.SetInput(0, 1000).ok());
  // One 8-byte physical write + one identifier-only recompute record.
  EXPECT_LT(engine.stats().op_log_bytes - before, 96u);
  int64_t v;
  ASSERT_TRUE(graph.Value(100, &v).ok());
  EXPECT_EQ(v, 1000 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

TEST(DataflowTest, GraphSurvivesCrash) {
  EngineOptions opts;
  opts.purge_threshold_ops = 8;
  CrashHarness harness(opts, 61);
  {
    DataflowGraph graph(&harness.engine());
    ASSERT_TRUE(graph.Open().ok());
    ASSERT_TRUE(graph.DefineInput(1, 7).ok());
    ASSERT_TRUE(graph.DefineInput(2, 9).ok());
    ASSERT_TRUE(graph.DefineDerived(5, CellFormula::kSum, {1, 2}).ok());
    ASSERT_TRUE(graph.DefineDerived(6, CellFormula::kMax, {5, 1}).ok());
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(graph.SetInput(1, i * 3).ok());
      ASSERT_TRUE(graph.SetInput(2, 100 - i).ok());
    }
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());

  DataflowGraph graph(&harness.engine());
  ASSERT_TRUE(graph.Open().ok());
  ASSERT_TRUE(graph.Audit().ok());
  int64_t v;
  ASSERT_TRUE(graph.Value(5, &v).ok());
  EXPECT_EQ(v, 24 * 3 + (100 - 24));
  ASSERT_TRUE(graph.Value(6, &v).ok());
  EXPECT_EQ(v, 24 * 3 + (100 - 24));
}

TEST(DataflowTest, DiamondDependenciesRecomputeOnce) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  DataflowGraph graph(&engine);
  ASSERT_TRUE(graph.Open().ok());
  // Diamond: 1 feeds 10 and 11, which both feed 20.
  ASSERT_TRUE(graph.DefineInput(1, 4).ok());
  ASSERT_TRUE(graph.DefineDerived(10, CellFormula::kSum, {1}).ok());
  ASSERT_TRUE(graph.DefineDerived(11, CellFormula::kProduct, {1}).ok());
  ASSERT_TRUE(graph.DefineDerived(20, CellFormula::kSum, {10, 11}).ok());
  uint64_t ops_before = engine.stats().ops_executed;
  ASSERT_TRUE(graph.SetInput(1, 6).ok());
  // Input write + exactly one recompute per affected cell: 4 operations.
  EXPECT_EQ(engine.stats().ops_executed - ops_before, 4u);
  int64_t v;
  ASSERT_TRUE(graph.Value(20, &v).ok());
  EXPECT_EQ(v, 12);
  ASSERT_TRUE(graph.Audit().ok());
}

}  // namespace
}  // namespace loglog
