#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/random.h"
#include "domains/btree/btree_page.h"
#include "ops/op_builder.h"
#include "recovery/txn_undo.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

// One of each transactional record form (and a checkpoint carrying the
// txn-id watermark), for the fuzz rounds below.
std::vector<LogRecord> TxnRecordCorpus() {
  std::vector<LogRecord> recs;
  LogRecord begin;
  begin.type = RecordType::kTxnBegin;
  begin.lsn = 10;
  begin.txn_id = 3;
  begin.prev_lsn = kInvalidLsn;
  recs.push_back(begin);
  LogRecord op;
  op.type = RecordType::kOperation;
  op.lsn = 11;
  op.txn_id = 3;
  op.prev_lsn = 10;
  op.op = MakePhysicalWrite(5, "payload");
  op.undo_images.push_back({true, {'o', 'l', 'd'}});
  recs.push_back(op);
  LogRecord clr;
  clr.type = RecordType::kCompensation;
  clr.lsn = 12;
  clr.txn_id = 3;
  clr.prev_lsn = 11;
  clr.undo_next_lsn = 10;
  clr.undo_skip = 0;
  clr.op = MakePhysicalWrite(5, "old");
  recs.push_back(clr);
  LogRecord abort;
  abort.type = RecordType::kTxnAbort;
  abort.lsn = 13;
  abort.txn_id = 3;
  abort.prev_lsn = 12;
  recs.push_back(abort);
  LogRecord commit;
  commit.type = RecordType::kTxnCommit;
  commit.lsn = 14;
  commit.txn_id = 4;
  commit.prev_lsn = 9;
  recs.push_back(commit);
  LogRecord ckpt;
  ckpt.type = RecordType::kCheckpoint;
  ckpt.lsn = 15;
  ckpt.txn_id = 4;  // the id high-water mark, not a transaction
  ckpt.dot.push_back({7, 11, false});
  recs.push_back(ckpt);
  // Log-store index checkpoint: object -> (lsn, device extent) entries.
  // A scribbled offset or size here would send recovery's faulted reads
  // into the weeds, so decode robustness matters as much as for the
  // transactional forms.
  LogRecord idx;
  idx.type = RecordType::kIndexCheckpoint;
  idx.lsn = 16;
  idx.index_entries.push_back({/*id=*/5, /*lsn=*/11, /*offset=*/128,
                               /*size=*/64});
  idx.index_entries.push_back({/*id=*/9, /*lsn=*/14, /*offset=*/4096,
                               /*size=*/257});
  recs.push_back(idx);
  return recs;
}

// Robustness: decoders must reject arbitrary and mutated bytes with a
// Status, never crash or accept trailing garbage. (Recovery reads these
// from a device that can hand it torn or scribbled sectors.)

class DecodeFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DecodeFuzzTest, RandomBytesNeverCrashDecoders) {
  Random rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk = rng.Bytes(rng.Uniform(64));
    {
      Slice s(junk);
      LogRecord rec;
      (void)LogRecord::DecodeFrom(&s, &rec);
    }
    {
      Slice s(junk);
      OperationDesc op;
      (void)OperationDesc::DecodeFrom(&s, &op);
    }
    {
      BtreePage page;
      (void)BtreePage::Deserialize(Slice(junk), &page);
    }
    {
      Slice s(junk);
      LogRecord rec;
      (void)ReadFramedRecord(&s, &rec);
    }
  }
}

TEST_P(DecodeFuzzTest, MutatedValidRecordsAreRejectedOrEquivalent) {
  Random rng(GetParam() * 31 + 5);
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.lsn = 42;
  rec.op = MakeAppRead(7, 9);
  std::vector<uint8_t> framed;
  FrameRecord(rec, &framed);

  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = framed;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    Slice s(mutated);
    LogRecord out;
    Status st = ReadFramedRecord(&s, &out);
    // The CRC catches every single-byte payload flip; header flips can
    // only fail (bad length) — never decode to a different record.
    EXPECT_TRUE(st.IsCorruption()) << "pos " << pos;
  }
}

TEST_P(DecodeFuzzTest, TruncationsOfValidEncodingsFail) {
  Random rng(GetParam() * 7 + 3);
  for (const OperationDesc& op :
       {MakeAppRead(1, 2), MakePhysicalWrite(3, "payload"),
        MakeSort(4, 5, 16), MakeHashCombine(6, {7, 8}, 64, 9)}) {
    std::vector<uint8_t> bytes;
    op.EncodeTo(&bytes);
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
      Slice s(cut);
      OperationDesc out;
      Status st = OperationDesc::DecodeFrom(&s, &out);
      // Either a clean rejection, or (rarely) a shorter valid prefix —
      // but then bytes must remain unconsumed... a full parse of a strict
      // prefix cannot leave the cursor empty AND equal the original.
      if (st.ok()) {
        EXPECT_FALSE(out == op) << keep;
      }
    }
  }
}

TEST_P(DecodeFuzzTest, TxnRecordMutationsAreRejected) {
  // Single-byte flips over framed transactional records (begin, in-txn
  // operation with before-image trailer, compensation, abort, commit,
  // watermark checkpoint) must always fail the frame CRC — a scribbled
  // backchain or undo-next LSN can never decode as a different record.
  Random rng(GetParam() * 17 + 1);
  for (const LogRecord& rec : TxnRecordCorpus()) {
    std::vector<uint8_t> framed;
    FrameRecord(rec, &framed);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint8_t> mutated = framed;
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
      Slice s(mutated);
      LogRecord out;
      EXPECT_TRUE(ReadFramedRecord(&s, &out).IsCorruption())
          << "type " << static_cast<int>(rec.type) << " pos " << pos;
    }
  }
}

TEST(DecodeTxnTest, TxnRecordTruncationsFail) {
  // Every strict prefix of a framed transactional record is an
  // incomplete frame; none may decode successfully.
  for (const LogRecord& rec : TxnRecordCorpus()) {
    std::vector<uint8_t> framed;
    FrameRecord(rec, &framed);
    for (size_t keep = 0; keep < framed.size(); ++keep) {
      std::vector<uint8_t> cut(framed.begin(), framed.begin() + keep);
      Slice s(cut);
      LogRecord out;
      EXPECT_FALSE(ReadFramedRecord(&s, &out).ok())
          << "type " << static_cast<int>(rec.type) << " keep " << keep;
    }
  }
}

TEST(DecodeTxnTest, ZeroTxnIdPayloadsRejected) {
  // txn_id == 0 marks a record non-transactional, so a marker or CLR
  // carrying it is contradictory and must be rejected at decode.
  for (RecordType type : {RecordType::kTxnBegin, RecordType::kTxnCommit,
                          RecordType::kTxnAbort, RecordType::kCompensation}) {
    std::vector<uint8_t> payload;
    payload.push_back(static_cast<uint8_t>(type));
    PutVarint64(&payload, /*lsn=*/20);
    PutVarint64(&payload, /*txn_id=*/0);
    PutVarint64(&payload, /*prev_lsn=*/19);
    Slice s(payload);
    LogRecord out;
    EXPECT_TRUE(LogRecord::DecodeFrom(&s, &out).IsCorruption())
        << static_cast<int>(type);
  }
}

TEST(DecodeTxnTest, CorruptBackchainLsnIsRejectedByRollback) {
  // A compensation record whose undo-next LSN points off the
  // transaction's backchain (decode-valid bytes, corrupted meaning) must
  // stop the rollback with Corruption, not silently skip or re-undo.
  SimulatedDisk disk;
  LogManager log(&disk.log());
  CacheManager cm(&disk, &log, GraphKind::kRefined,
                  FlushPolicy::kNativeAtomic, /*log_installs=*/true);
  FaultInjector faults;
  TxnRollbackPlan plan;
  plan.txn_id = 9;
  plan.last_lsn = 33;
  plan.forward.push_back(
      {/*lsn=*/30, MakePhysicalWrite(1, "x"), {{true, {'o'}}}});
  plan.resume_lsn = 500;  // not the LSN of any forward record
  TxnUndoStats stats;
  Status st = RollbackTxn(&cm, &log, &faults, plan, /*io_budget=*/1, &stats);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(stats.clrs_logged, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest, testing::Values(1, 2, 3));

}  // namespace
}  // namespace loglog
