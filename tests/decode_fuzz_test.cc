#include <gtest/gtest.h>

#include "common/random.h"
#include "domains/btree/btree_page.h"
#include "ops/op_builder.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

// Robustness: decoders must reject arbitrary and mutated bytes with a
// Status, never crash or accept trailing garbage. (Recovery reads these
// from a device that can hand it torn or scribbled sectors.)

class DecodeFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DecodeFuzzTest, RandomBytesNeverCrashDecoders) {
  Random rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> junk = rng.Bytes(rng.Uniform(64));
    {
      Slice s(junk);
      LogRecord rec;
      (void)LogRecord::DecodeFrom(&s, &rec);
    }
    {
      Slice s(junk);
      OperationDesc op;
      (void)OperationDesc::DecodeFrom(&s, &op);
    }
    {
      BtreePage page;
      (void)BtreePage::Deserialize(Slice(junk), &page);
    }
    {
      Slice s(junk);
      LogRecord rec;
      (void)ReadFramedRecord(&s, &rec);
    }
  }
}

TEST_P(DecodeFuzzTest, MutatedValidRecordsAreRejectedOrEquivalent) {
  Random rng(GetParam() * 31 + 5);
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.lsn = 42;
  rec.op = MakeAppRead(7, 9);
  std::vector<uint8_t> framed;
  FrameRecord(rec, &framed);

  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> mutated = framed;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    Slice s(mutated);
    LogRecord out;
    Status st = ReadFramedRecord(&s, &out);
    // The CRC catches every single-byte payload flip; header flips can
    // only fail (bad length) — never decode to a different record.
    EXPECT_TRUE(st.IsCorruption()) << "pos " << pos;
  }
}

TEST_P(DecodeFuzzTest, TruncationsOfValidEncodingsFail) {
  Random rng(GetParam() * 7 + 3);
  for (const OperationDesc& op :
       {MakeAppRead(1, 2), MakePhysicalWrite(3, "payload"),
        MakeSort(4, 5, 16), MakeHashCombine(6, {7, 8}, 64, 9)}) {
    std::vector<uint8_t> bytes;
    op.EncodeTo(&bytes);
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
      Slice s(cut);
      OperationDesc out;
      Status st = OperationDesc::DecodeFrom(&s, &out);
      // Either a clean rejection, or (rarely) a shorter valid prefix —
      // but then bytes must remain unconsumed... a full parse of a strict
      // prefix cannot leave the cursor empty AND equal the original.
      if (st.ok()) {
        EXPECT_FALSE(out == op) << keep;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest, testing::Values(1, 2, 3));

}  // namespace
}  // namespace loglog
