#include <gtest/gtest.h>

#include "common/random.h"
#include "domains/app/recoverable_app.h"
#include "ops/op_builder.h"
#include "domains/fs/file_system.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

TEST(FileSystemTest, CreateReadWriteList) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  FileSystem fs(&engine);
  ASSERT_TRUE(fs.Mount().ok());
  ASSERT_TRUE(fs.Create("a.txt", "alpha").ok());
  ASSERT_TRUE(fs.Create("b.txt", "beta").ok());
  EXPECT_TRUE(fs.Create("a.txt", "dup").IsInvalidArgument());

  ObjectValue data;
  ASSERT_TRUE(fs.ReadFile("a.txt", &data).ok());
  EXPECT_EQ(Slice(data).ToString(), "alpha");
  ASSERT_TRUE(fs.WriteFile("a.txt", "ALPHA").ok());
  ASSERT_TRUE(fs.Append("a.txt", "!").ok());
  ASSERT_TRUE(fs.ReadFile("a.txt", &data).ok());
  EXPECT_EQ(Slice(data).ToString(), "ALPHA!");

  EXPECT_EQ(fs.List(), (std::vector<std::string>{"a.txt", "b.txt"}));
  EXPECT_TRUE(fs.ReadFile("nope", &data).IsNotFound());
}

TEST(FileSystemTest, LogicalCopyAndSortLogNoContents) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  FileSystem fs(&engine);
  ASSERT_TRUE(fs.Mount().ok());

  // A big file whose content must never reach the log via copy/sort.
  Random rng(5);
  std::vector<uint8_t> big;
  for (int i = 0; i < 1024; ++i) {
    auto rec = rng.Bytes(16);
    big.insert(big.end(), rec.begin(), rec.end());
  }
  ASSERT_TRUE(fs.Create("big", Slice(big)).ok());

  uint64_t bytes_before = engine.stats().op_log_bytes;
  ASSERT_TRUE(fs.Copy("copy", "big").ok());
  ASSERT_TRUE(fs.SortFile("sorted", "big", 16).ok());
  uint64_t logged = engine.stats().op_log_bytes - bytes_before;
  // Two logical ops plus two small directory updates — far below one
  // file's 16 KiB content.
  EXPECT_LT(logged, 1024u);

  ObjectValue copy, sorted;
  ASSERT_TRUE(fs.ReadFile("copy", &copy).ok());
  EXPECT_EQ(copy, big);
  ASSERT_TRUE(fs.ReadFile("sorted", &sorted).ok());
  ASSERT_EQ(sorted.size(), big.size());
  for (size_t i = 16; i < sorted.size(); i += 16) {
    EXPECT_LE(memcmp(sorted.data() + i - 16, sorted.data() + i, 16), 0);
  }
}

TEST(FileSystemTest, CopyOntoExistingOverwrites) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  FileSystem fs(&engine);
  ASSERT_TRUE(fs.Mount().ok());
  ASSERT_TRUE(fs.Create("src", "source-content").ok());
  ASSERT_TRUE(fs.Create("dst", "old-content").ok());
  size_t names_before = fs.List().size();
  ASSERT_TRUE(fs.Copy("dst", "src").ok());  // overwrite, no new entry
  EXPECT_EQ(fs.List().size(), names_before);
  ObjectValue data;
  ASSERT_TRUE(fs.ReadFile("dst", &data).ok());
  EXPECT_EQ(Slice(data).ToString(), "source-content");
  EXPECT_TRUE(fs.Copy("dst", "missing").IsNotFound());

  // Sort onto an existing destination likewise reuses the object.
  std::string recs = "ddddccccbbbbaaaa";
  ASSERT_TRUE(fs.WriteFile("src", recs).ok());
  ASSERT_TRUE(fs.SortFile("dst", "src", 4).ok());
  ASSERT_TRUE(fs.ReadFile("dst", &data).ok());
  EXPECT_EQ(Slice(data).ToString(), "aaaabbbbccccdddd");
}

TEST(FileSystemTest, RemoveDeletesAndSurvivesRecovery) {
  CrashHarness harness(EngineOptions{}, 3);
  {
    FileSystem fs(&harness.engine());
    ASSERT_TRUE(fs.Mount().ok());
    ASSERT_TRUE(fs.Create("keep", "stay").ok());
    ASSERT_TRUE(fs.Create("temp", "gone").ok());
    ASSERT_TRUE(fs.Remove("temp").ok());
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  FileSystem fs(&harness.engine());
  ASSERT_TRUE(fs.Mount().ok());
  EXPECT_TRUE(fs.Exists("keep"));
  EXPECT_FALSE(fs.Exists("temp"));
  ObjectValue data;
  ASSERT_TRUE(fs.ReadFile("keep", &data).ok());
  EXPECT_EQ(Slice(data).ToString(), "stay");
}

TEST(RecoverableAppTest, DeterministicPipelineAcrossModes) {
  // The logical-write app and the [7] physical-write baseline must
  // produce identical states and outputs; only the logging cost differs.
  auto run = [](bool logical, uint64_t* log_bytes, ObjectValue* out) {
    SimulatedDisk disk;
    RecoveryEngine engine(EngineOptions{}, &disk);
    ASSERT_TRUE(
        engine.Execute(MakeCreate(50, Slice(Random(1).Bytes(4096)))).ok());
    RecoverableApp app(&engine, 60, 128, logical);
    ASSERT_TRUE(app.Init(7).ok());
    uint64_t before = engine.stats().op_log_bytes;
    ASSERT_TRUE(app.Absorb(50).ok());
    ASSERT_TRUE(app.Step(11).ok());
    ASSERT_TRUE(app.Emit(70, 4096, 13).ok());
    *log_bytes = engine.stats().op_log_bytes - before;
    ASSERT_TRUE(engine.Read(70, out).ok());
  };
  uint64_t logical_bytes = 0, physical_bytes = 0;
  ObjectValue logical_out, physical_out;
  run(true, &logical_bytes, &logical_out);
  run(false, &physical_bytes, &physical_out);
  EXPECT_EQ(logical_out, physical_out);
  // The logical write avoids logging the 4 KiB output.
  EXPECT_LT(logical_bytes, 256u);
  EXPECT_GT(physical_bytes, 4096u);
}

TEST(RecoverableAppTest, StateRecoversAfterCrash) {
  EngineOptions opts;
  opts.purge_threshold_ops = 8;
  CrashHarness harness(opts, 21);
  ObjectValue expected_state, expected_out;
  {
    ASSERT_TRUE(harness.engine()
                    .Execute(MakeCreate(50, Slice(Random(2).Bytes(512))))
                    .ok());
    RecoverableApp app(&harness.engine(), 61, 64);
    ASSERT_TRUE(app.Init(1).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(app.Step(i).ok());
      ASSERT_TRUE(app.Absorb(50).ok());
      ASSERT_TRUE(app.Emit(71, 512, i).ok());
    }
    ASSERT_TRUE(app.State(&expected_state).ok());
    ASSERT_TRUE(harness.engine().Read(71, &expected_out).ok());
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  RecoverableApp app(&harness.engine(), 61, 64);
  ObjectValue state, out;
  ASSERT_TRUE(app.State(&state).ok());
  EXPECT_EQ(state, expected_state);
  ASSERT_TRUE(harness.engine().Read(71, &out).ok());
  EXPECT_EQ(out, expected_out);
}

}  // namespace
}  // namespace loglog
