#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

TEST(EngineTest, ExecuteReadRoundTrip) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "hello")).ok());
  ObjectValue v;
  ASSERT_TRUE(engine.Read(1, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "hello");
  EXPECT_TRUE(engine.Exists(1));
  EXPECT_FALSE(engine.Exists(2));
  EXPECT_TRUE(engine.Read(2, &v).IsNotFound());
}

TEST(EngineTest, ValidationErrors) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  OperationDesc bad;
  EXPECT_TRUE(engine.Execute(bad).IsInvalidArgument());  // empty writeset

  OperationDesc unknown = MakeCreate(1, "x");
  unknown.func = 0x7777;
  EXPECT_TRUE(engine.Execute(unknown).IsInvalidArgument());

  // Reading a missing object fails without logging anything.
  uint64_t ops = engine.stats().ops_executed;
  EXPECT_TRUE(engine.Execute(MakeCopy(2, 99)).IsNotFound());
  EXPECT_EQ(engine.stats().ops_executed, ops);
  EXPECT_TRUE(engine.Execute(MakeDelete(42)).IsNotFound());
}

TEST(EngineTest, DeleteThenRecreate) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "v1")).ok());
  ASSERT_TRUE(engine.Execute(MakeDelete(1)).ok());
  EXPECT_FALSE(engine.Exists(1));
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "v2")).ok());
  ObjectValue v;
  ASSERT_TRUE(engine.Read(1, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "v2");
  ASSERT_TRUE(engine.FlushAll().ok());
  StoredObject obj;
  ASSERT_TRUE(disk.store().Read(1, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "v2");
}

TEST(EngineTest, PurgeThresholdBoundsUninstalledOps) {
  EngineOptions opts;
  opts.purge_threshold_ops = 10;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        engine.Execute(MakePhysicalWrite(1 + (i % 5), "value")).ok());
    EXPECT_LE(engine.cache().uninstalled_ops(), 10u);
  }
  EXPECT_GT(engine.cache().stats().nodes_installed, 0u);
}

TEST(EngineTest, CheckpointIntervalTruncatesAutomatically) {
  EngineOptions opts;
  opts.purge_threshold_ops = 4;
  opts.checkpoint_interval_ops = 20;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.Execute(MakePhysicalWrite(1, "v")).ok());
  }
  EXPECT_GE(engine.cache().stats().checkpoints, 9u);
  // The retained log stays bounded: far fewer than 200 records' worth.
  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(LogManager::ReadStable(disk.log(), &records, &torn, &next,
                                     &valid_end)
                  .ok());
  EXPECT_LT(records.size(), 60u);
}

TEST(EngineTest, CacheCapacityEvictsClean) {
  EngineOptions opts;
  opts.cache_capacity_objects = 4;
  opts.purge_threshold_ops = 2;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  for (ObjectId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(engine.Execute(MakeCreate(id, "x")).ok());
  }
  EXPECT_LE(engine.cache().table().size(), 6u);  // capacity + in-flight dirt
  EXPECT_GT(engine.cache().stats().evictions, 0u);
  // Evicted objects are still readable (cache miss -> stable store).
  ObjectValue v;
  ASSERT_TRUE(engine.Read(1, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "x");
}

TEST(EngineTest, PhysiologicalModeDecomposesLogicalOps) {
  EngineOptions opts;
  opts.logging_mode = LoggingMode::kPhysiological;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "source-data")).ok());
  uint64_t ops_before = engine.stats().ops_executed;
  ASSERT_TRUE(engine.Execute(MakeCopy(2, 1)).ok());
  // The copy became a physical write carrying the value.
  EXPECT_EQ(engine.stats().ops_executed, ops_before + 1);
  EXPECT_GT(engine.stats().physical_ops, 0u);
  ObjectValue v;
  ASSERT_TRUE(engine.Read(2, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "source-data");

  // Single-object physiological ops are logged as-is.
  uint64_t physio_before = engine.stats().physiological_ops;
  ASSERT_TRUE(engine.Execute(MakeAppend(1, "!")).ok());
  EXPECT_EQ(engine.stats().physiological_ops, physio_before + 1);
}

TEST(EngineTest, OpClassCountersTrack) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "a")).ok());     // physical
  ASSERT_TRUE(engine.Execute(MakeAppend(1, "b")).ok());     // physiological
  ASSERT_TRUE(engine.Execute(MakeCopy(2, 1)).ok());         // logical
  EXPECT_EQ(engine.stats().physical_ops, 1u);
  EXPECT_EQ(engine.stats().physiological_ops, 1u);
  EXPECT_EQ(engine.stats().logical_ops, 1u);
  EXPECT_EQ(engine.stats().ops_executed, 3u);
}

TEST(EngineTest, FlushAllMakesStoreMatchCache) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  Random rng(4);
  for (ObjectId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(engine.Execute(MakeCreate(id, Slice(rng.Bytes(100)))).ok());
  }
  for (int i = 0; i < 30; ++i) {
    ObjectId a = 1 + rng.Uniform(10), b = 1 + rng.Uniform(10);
    if (a == b) continue;
    ASSERT_TRUE(engine.Execute(MakeCopy(a, b)).ok());
  }
  ASSERT_TRUE(engine.FlushAll().ok());
  for (ObjectId id = 1; id <= 10; ++id) {
    ObjectValue cached;
    StoredObject stored;
    ASSERT_TRUE(engine.Read(id, &cached).ok());
    ASSERT_TRUE(disk.store().Read(id, &stored).ok());
    EXPECT_EQ(cached, stored.value) << id;
  }
}

}  // namespace
}  // namespace loglog
