#include <gtest/gtest.h>

#include "common/random.h"
#include "explain/explainability.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "wal/log_manager.h"

namespace loglog {
namespace {

constexpr ObjectId kX = 1, kY = 2, kZ = 3;

std::map<ObjectId, ObjectValue> Init() {
  return {{kX, {'x'}}, {kY, {'y'}}, {kZ, {'z'}}};
}

// Figure 1(a): A: Y <- f(X,Y); B: X <- g(Y). Flushing Y first (A
// installed, B not) is explainable; flushing only B's X while A's Y is
// missing is NOT — exactly the flush-order argument of Section 1.
TEST(ExplainabilityTest, Figure1FlushOrders) {
  std::vector<OperationDesc> history = {
      MakeAppRead(kY, kX),              // A: Y = f(X, Y)
      MakeAppWrite(kY, kX, 8, 7),       // B: X = g(Y)
  };
  ExplainabilityChecker checker(history, Init());

  // Nothing flushed: the empty prefix set explains the initial state.
  EXPECT_TRUE(checker.Explains({}, Init()));
  // A installed (its Y flushed): {A} explains it.
  EXPECT_TRUE(checker.Explains({0}, checker.StateAfter({0})));
  // Both installed.
  EXPECT_TRUE(checker.Explains({0, 1}, checker.StateAfter({0, 1})));
  // {B} alone is not even a prefix set: A read X which B writes.
  EXPECT_FALSE(checker.IsPrefixSet({1}));

  // The bad stable state: B's X flushed but A's Y not. No explanation.
  std::map<ObjectId, ObjectValue> bad = Init();
  bad[kX] = checker.StateAfter({0, 1})[kX];
  EXPECT_FALSE(checker.FindExplanation(bad).has_value());

  // The good stable state: A's Y flushed, X still old. Explained by {A}.
  std::map<ObjectId, ObjectValue> good = Init();
  good[kY] = checker.StateAfter({0})[kY];
  auto witness = checker.FindExplanation(good);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(*witness, (std::set<size_t>{0}));
}

// Figure 5/7: A writes {X,Y}; C blind-writes X. A state holding A's Y
// with the ORIGINAL X is explainable by {A} — X is unexposed (C, the
// earliest outside op touching X, writes it blindly). This is precisely
// why rW may flush Y alone.
TEST(ExplainabilityTest, UnexposedObjectsNeedNoCorrectValue) {
  std::vector<OperationDesc> history;
  OperationDesc a = MakeXorMerge(kY, {kX});  // reads X, writes Y
  history.push_back(a);
  history.push_back(MakePhysicalWrite(kX, "blind"));  // C
  ExplainabilityChecker checker(history, Init());

  std::map<ObjectId, ObjectValue> state = Init();
  state[kY] = checker.StateAfter({0})[kY];
  // X keeps its initial value even though... that is fine: with I={A},
  // X's only outside toucher is C, which writes blindly -> unexposed.
  std::set<ObjectId> exposed = checker.ExposedBy({0});
  EXPECT_FALSE(exposed.contains(kX));
  EXPECT_TRUE(exposed.contains(kY));
  EXPECT_TRUE(checker.Explains({0}, state));

  // Even a GARBAGE X is explainable — unexposed means "value irrelevant".
  state[kX] = {0xde, 0xad};
  EXPECT_TRUE(checker.Explains({0}, state));

  // But once C is in I, X is exposed and the garbage is rejected.
  EXPECT_FALSE(checker.Explains({0, 1}, state));
}

TEST(ExplainabilityTest, DeletesExplainAbsence) {
  std::vector<OperationDesc> history = {
      MakeCreate(kX, "temp"),
      MakeDelete(kX),
  };
  ExplainabilityChecker checker(history);
  // All installed: X must be absent.
  EXPECT_TRUE(checker.Explains({0, 1}, {}));
  std::map<ObjectId, ObjectValue> lingering = {{kX, {'t'}}};
  EXPECT_FALSE(checker.Explains({0, 1}, lingering));
  // Only the create installed: X must hold the created value.
  EXPECT_TRUE(
      checker.Explains({0}, {{kX, ObjectValue{'t', 'e', 'm', 'p'}}}));
}

// Property: every state reachable by installing a prefix set in order is
// explainable (Theorem 1's invariant), across random small histories.
TEST(ExplainabilityTest, InstalledPrefixStatesAreExplainable) {
  Random rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<OperationDesc> history;
    for (int i = 0; i < 10; ++i) {
      switch (rng.Uniform(4)) {
        case 0:
          history.push_back(MakeAppRead(1 + rng.Uniform(3),
                                        1 + rng.Uniform(3)));
          break;
        case 1:
          history.push_back(MakeAppWrite(1 + rng.Uniform(3),
                                         1 + rng.Uniform(3), 4,
                                         rng.Next()));
          break;
        case 2:
          history.push_back(
              MakePhysicalWrite(1 + rng.Uniform(3), "pv"));
          break;
        default:
          history.push_back(MakeAppExecute(1 + rng.Uniform(3), rng.Next()));
          break;
      }
      // Self-reads of the same object id are fine; drop malformed dups.
      if (!history.back().Validate().ok()) history.pop_back();
    }
    ExplainabilityChecker checker(history, Init());
    // Build a random prefix set by greedy closure.
    std::set<size_t> prefix;
    for (size_t i = 0; i < history.size(); ++i) {
      bool preds_in = true;
      for (size_t p : checker.preds()[i]) {
        if (!prefix.contains(p)) preds_in = false;
      }
      if (preds_in && rng.OneIn(2)) prefix.insert(i);
    }
    ASSERT_TRUE(checker.IsPrefixSet(prefix));
    EXPECT_TRUE(checker.Explains(prefix, checker.StateAfter(prefix)))
        << "trial " << trial;
  }
}

// Theorem 3, checked against the real cache manager: every stable state
// PurgeCache produces mid-workload is explainable by some prefix set of
// the stable history. The exhaustive oracle re-derives Section 2's
// definitions with no knowledge of the engine.
struct CmParam {
  GraphKind graph;
  FlushPolicy flush;
  uint64_t seed;
};

class CmExplainabilityTest : public testing::TestWithParam<CmParam> {};

TEST_P(CmExplainabilityTest, EveryFlushedStateIsExplainable) {
  const CmParam& p = GetParam();
  EngineOptions opts;
  opts.graph_kind = p.graph;
  opts.flush_policy = p.flush;
  opts.purge_threshold_ops = 0;  // explicit purging only
  opts.log_installs = false;     // keep the history to operations
  CrashHarness harness(opts, p.seed);
  Random rng(p.seed * 13 + 1);

  // A small tangle of logical operations over three objects.
  ASSERT_TRUE(harness.Execute(MakeCreate(kX, "xx")).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(kY, "yy")).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(kZ, "zz")).ok());
  for (int i = 0; i < 8; ++i) {
    ObjectId a = 1 + rng.Uniform(3);
    ObjectId b = 1 + rng.Uniform(3);
    switch (rng.Uniform(3)) {
      case 0:
        if (a != b) {
          ASSERT_TRUE(harness.Execute(MakeAppRead(a, b)).ok());
        }
        break;
      case 1:
        if (a != b) {
          ASSERT_TRUE(
              harness.Execute(MakeAppWrite(a, b, 4, rng.Next())).ok());
        }
        break;
      default:
        ASSERT_TRUE(harness.Execute(MakeAppExecute(a, rng.Next())).ok());
        break;
    }
  }

  // Flush a random number of nodes, then examine the stable state.
  int purges = static_cast<int>(rng.Uniform(5));
  for (int i = 0; i < purges; ++i) {
    Status st = harness.engine().PurgeOne();
    if (st.IsNotFound()) break;
    ASSERT_TRUE(st.ok());
  }
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());

  // The stable history: every operation record on the stable log.
  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(LogManager::ReadStable(harness.disk().log(), &records, &torn,
                                     &next, &valid_end)
                  .ok());
  std::vector<OperationDesc> history;
  for (const LogRecord& rec : records) {
    if (rec.type == RecordType::kOperation) history.push_back(rec.op);
  }
  ASSERT_LE(history.size(), 20u);  // keep the oracle tractable

  std::map<ObjectId, ObjectValue> stable;
  harness.disk().store().ForEach(
      [&](ObjectId id, const StoredObject& obj) {
        stable[id] = obj.value;
      });

  ExplainabilityChecker checker(history);
  auto witness = checker.FindExplanation(stable);
  EXPECT_TRUE(witness.has_value())
      << "no prefix set explains the stable state after " << purges
      << " purges (history " << history.size() << " ops)";
}

std::vector<CmParam> CmMatrix() {
  std::vector<CmParam> out;
  for (GraphKind gk : {GraphKind::kRefined, GraphKind::kW}) {
    for (FlushPolicy fp :
         {FlushPolicy::kNativeAtomic, FlushPolicy::kIdentityWrites,
          FlushPolicy::kFlushTransaction}) {
      for (uint64_t seed : {1u, 2u, 3u, 4u}) {
        out.push_back({gk, fp, seed});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CmExplainabilityTest, testing::ValuesIn(CmMatrix()),
    [](const testing::TestParamInfo<CmParam>& info) {
      const CmParam& p = info.param;
      std::string s = p.graph == GraphKind::kRefined ? "RW" : "W";
      s += p.flush == FlushPolicy::kIdentityWrites
               ? "Ident"
               : (p.flush == FlushPolicy::kFlushTransaction ? "Ftxn"
                                                            : "Native");
      return s + "S" + std::to_string(p.seed);
    });

}  // namespace
}  // namespace loglog
