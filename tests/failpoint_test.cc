#include <gtest/gtest.h>

#include "ops/function_registry.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

constexpr FuncId kTwoOut = kFuncFirstCustom + 0x50;

void RegisterTwoOut() {
  FunctionRegistry::Global().Register(
      kTwoOut,
      [](const OperationDesc&, const std::vector<ObjectValue>& reads,
         std::vector<ObjectValue>* writes) {
        (*writes)[0] = reads[0];
        (*writes)[1] = reads[0];
        return Status::OK();
      });
}

OperationDesc TwoOutOp(ObjectId src, ObjectId a, ObjectId b) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kTwoOut;
  op.reads = {src};
  op.writes = {a, b};
  return op;
}

// Crash exactly between a flush transaction's commit and its in-place
// writes, through the real PurgeCache path: recovery must complete the
// transaction from the logged values.
class FlushTxnWindowTest
    : public testing::TestWithParam<CacheManager::FailPoint> {};

TEST_P(FlushTxnWindowTest, RecoveryCompletesInterruptedFlush) {
  RegisterTwoOut();
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kFlushTransaction;
  opts.purge_threshold_ops = 0;  // manual
  CrashHarness harness(opts, 77);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "source-value")).ok());
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.Execute(TwoOutOp(1, 2, 3)).ok());

  harness.engine().cache().set_fail_point(GetParam());
  Status st = harness.engine().PurgeOne();
  ASSERT_TRUE(st.IsAborted()) << st.ToString();

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  StoredObject obj;
  ASSERT_TRUE(harness.disk().store().Read(2, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "source-value");
  ASSERT_TRUE(harness.disk().store().Read(3, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "source-value");
}

INSTANTIATE_TEST_SUITE_P(
    Windows, FlushTxnWindowTest,
    testing::Values(CacheManager::FailPoint::kAfterFlushTxnCommit,
                    CacheManager::FailPoint::kAfterFirstFlushTxnWrite),
    [](const testing::TestParamInfo<CacheManager::FailPoint>& info) {
      return info.param == CacheManager::FailPoint::kAfterFlushTxnCommit
                 ? "AfterCommit"
                 : "AfterFirstWrite";
    });

// Crash after the WAL force but before any flush: pure redo territory.
TEST(FailPointTest, CrashAfterWalForceRedoesEverything) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 78);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "payload")).ok());
  harness.engine().cache().set_fail_point(
      CacheManager::FailPoint::kAfterWalForce);
  ASSERT_TRUE(harness.engine().PurgeOne().IsAborted());
  EXPECT_FALSE(harness.disk().store().Exists(1));

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  EXPECT_EQ(stats.ops_redone, 1u);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  EXPECT_TRUE(harness.disk().store().Exists(1));
}

}  // namespace
}  // namespace loglog
