#include <gtest/gtest.h>

#include "ops/function_registry.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

constexpr FuncId kTwoOut = kFuncFirstCustom + 0x50;

void RegisterTwoOut() {
  FunctionRegistry::Global().Register(
      kTwoOut,
      [](const OperationDesc&, const std::vector<ObjectValue>& reads,
         std::vector<ObjectValue>* writes) {
        (*writes)[0] = reads[0];
        (*writes)[1] = reads[0];
        return Status::OK();
      });
}

OperationDesc TwoOutOp(ObjectId src, ObjectId a, ObjectId b) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kTwoOut;
  op.reads = {src};
  op.writes = {a, b};
  return op;
}

// Crash exactly between a flush transaction's commit and its in-place
// writes, through the real PurgeCache path: recovery must complete the
// transaction from the logged values. Armed through the fault-injector
// registry (the modern spelling of the old FailPoint enum).
class FlushTxnWindowTest
    : public testing::TestWithParam<std::string_view> {};

TEST_P(FlushTxnWindowTest, RecoveryCompletesInterruptedFlush) {
  RegisterTwoOut();
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kFlushTransaction;
  opts.purge_threshold_ops = 0;  // manual
  CrashHarness harness(opts, 77);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "source-value")).ok());
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.Execute(TwoOutOp(1, 2, 3)).ok());

  harness.disk().fault_injector().Arm(GetParam(), FaultSpec::CrashOnce());
  Status st = harness.engine().PurgeOne();
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_EQ(harness.disk().fault_injector().site_stats(GetParam()).fires,
            1u);

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  StoredObject obj;
  ASSERT_TRUE(harness.disk().store().Read(2, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "source-value");
  ASSERT_TRUE(harness.disk().store().Read(3, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "source-value");
}

INSTANTIATE_TEST_SUITE_P(
    Windows, FlushTxnWindowTest,
    testing::Values(fault::kCmAfterFlushTxnCommit,
                    fault::kCmAfterFirstFlushTxnWrite),
    [](const testing::TestParamInfo<std::string_view>& info) {
      return info.param == fault::kCmAfterFlushTxnCommit
                 ? "AfterCommit"
                 : "AfterFirstWrite";
    });

// Crash after the WAL force but before any flush: pure redo territory.
// Armed through the legacy set_fail_point shim, which must keep working
// (it maps onto the registry).
TEST(FailPointTest, CrashAfterWalForceRedoesEverything) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 78);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "payload")).ok());
  harness.engine().cache().set_fail_point(
      CacheManager::FailPoint::kAfterWalForce);
  EXPECT_TRUE(harness.disk().fault_injector().armed(fault::kCmAfterWalForce));
  ASSERT_TRUE(harness.engine().PurgeOne().IsAborted());
  EXPECT_FALSE(harness.disk().store().Exists(1));

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  EXPECT_EQ(stats.ops_redone, 1u);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  EXPECT_TRUE(harness.disk().store().Exists(1));
}

// One-shot semantics live in the registry now: the site disarms itself
// after firing, so the very next pass through the same window succeeds
// without any manual reset (the old fail_point_ member had to self-clear;
// the trigger policy subsumes it).
TEST(FailPointTest, CrashWindowSelfClearsAfterFiring) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 79);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "v1")).ok());
  harness.disk().fault_injector().Arm(fault::kCmAfterWalForce,
                                      FaultSpec::CrashOnce());
  ASSERT_TRUE(harness.engine().PurgeOne().IsAborted());
  EXPECT_FALSE(harness.disk().fault_injector().armed(fault::kCmAfterWalForce));
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  // The redo pass re-applied the operation; installing it now must not
  // trip the (already fired) fault again.
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

}  // namespace
}  // namespace loglog
