#include <gtest/gtest.h>

#include "fault/fault_injector.h"

namespace loglog {
namespace {

TEST(FaultInjectorTest, UnarmedSiteNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed(fault::kStoreWrite));
  EXPECT_FALSE(static_cast<bool>(inj.Hit(fault::kStoreWrite)));
  EXPECT_TRUE(inj.MaybeFail(fault::kStoreWrite).ok());
  EXPECT_EQ(inj.total_fires(), 0u);
  EXPECT_EQ(inj.armed_count(), 0u);
}

TEST(FaultInjectorTest, OneShotFiresOnceThenDisarms) {
  FaultInjector inj;
  inj.Arm(fault::kStoreWrite, FaultSpec::TransientOnce());
  EXPECT_TRUE(inj.armed(fault::kStoreWrite));
  EXPECT_EQ(inj.armed_count(), 1u);
  FaultFire fire = inj.Hit(fault::kStoreWrite);
  EXPECT_EQ(fire.action, FaultAction::kTransientIoError);
  EXPECT_FALSE(inj.armed(fault::kStoreWrite));
  EXPECT_FALSE(static_cast<bool>(inj.Hit(fault::kStoreWrite)));
  EXPECT_EQ(inj.total_fires(), 1u);
  FaultSiteStats s = inj.site_stats(fault::kStoreWrite);
  EXPECT_EQ(s.fires, 1u);
  EXPECT_EQ(s.hits, 1u);  // hits stop counting once disarmed
}

TEST(FaultInjectorTest, NthHitFiresExactlyOnTheNthHit) {
  FaultInjector inj;
  inj.Arm(fault::kLogForce, FaultSpec::CrashOnHit(3));
  EXPECT_FALSE(static_cast<bool>(inj.Hit(fault::kLogForce)));
  EXPECT_FALSE(static_cast<bool>(inj.Hit(fault::kLogForce)));
  FaultFire fire = inj.Hit(fault::kLogForce);
  EXPECT_EQ(fire.action, FaultAction::kCrashNow);
  EXPECT_FALSE(inj.armed(fault::kLogForce));
}

TEST(FaultInjectorTest, EveryKWithMaxFires) {
  FaultInjector inj;
  FaultSpec spec;
  spec.action = FaultAction::kTransientIoError;
  spec.trigger = FaultTrigger::kEveryK;
  spec.n = 2;
  spec.max_fires = 2;
  inj.Arm(fault::kStoreRead, spec);
  // Fires on hits 2 and 4, then exhausts.
  EXPECT_FALSE(static_cast<bool>(inj.Hit(fault::kStoreRead)));
  EXPECT_TRUE(static_cast<bool>(inj.Hit(fault::kStoreRead)));
  EXPECT_FALSE(static_cast<bool>(inj.Hit(fault::kStoreRead)));
  EXPECT_TRUE(static_cast<bool>(inj.Hit(fault::kStoreRead)));
  EXPECT_FALSE(inj.armed(fault::kStoreRead));
  EXPECT_EQ(inj.site_stats(fault::kStoreRead).fires, 2u);
}

TEST(FaultInjectorTest, TransientTimesFailsThenSucceeds) {
  FaultInjector inj;
  inj.Arm(fault::kStoreWrite, FaultSpec::TransientTimes(2));
  EXPECT_TRUE(inj.MaybeFail(fault::kStoreWrite).IsIoError());
  EXPECT_TRUE(inj.MaybeFail(fault::kStoreWrite).IsIoError());
  EXPECT_TRUE(inj.MaybeFail(fault::kStoreWrite).ok());
  EXPECT_TRUE(inj.MaybeFail(fault::kStoreWrite).ok());
}

TEST(FaultInjectorTest, ProbabilisticIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    FaultInjector inj;
    inj.Arm(fault::kStoreWrite,
            FaultSpec::Probabilistic(FaultAction::kTransientIoError, 30,
                                     seed));
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(static_cast<bool>(inj.Hit(fault::kStoreWrite)));
    }
    return fires;
  };
  EXPECT_EQ(run(7), run(7));        // same seed, same decisions
  EXPECT_NE(run(7), run(8));        // different seed, different decisions
  // ~30% of 64 hits should fire; accept a generous band.
  std::vector<bool> fires = run(7);
  int count = 0;
  for (bool f : fires) count += f ? 1 : 0;
  EXPECT_GT(count, 5);
  EXPECT_LT(count, 40);
}

TEST(FaultInjectorTest, MaybeFailMapsActionsToStatuses) {
  FaultInjector inj;
  inj.Arm(fault::kLogAppend, FaultSpec::Permanent());
  EXPECT_TRUE(inj.MaybeFail(fault::kLogAppend).IsIoError());
  inj.Arm(fault::kLogAppend, FaultSpec::CrashOnce());
  Status st = inj.MaybeFail(fault::kLogAppend);
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_NE(st.message().find("log.append"), std::string::npos);
}

TEST(FaultInjectorTest, CrashCallbackInvokedOnCrashFires) {
  FaultInjector inj;
  int crashes = 0;
  std::string last_site;
  inj.set_crash_callback([&](std::string_view site) {
    ++crashes;
    last_site = std::string(site);
  });
  inj.Arm(fault::kStoreWrite, FaultSpec::TransientOnce());
  (void)inj.Hit(fault::kStoreWrite);
  EXPECT_EQ(crashes, 0);  // error actions do not "crash"
  inj.Arm(fault::kStoreWrite, FaultSpec::CrashOnce());
  (void)inj.Hit(fault::kStoreWrite);
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(last_site, fault::kStoreWrite);
  inj.Arm(fault::kLogAppend, FaultSpec::TornOnce(1));
  (void)inj.Hit(fault::kLogAppend);
  EXPECT_EQ(crashes, 2);  // torn writes imply a crash too
}

TEST(FaultInjectorTest, FlipBitChangesExactlyOneBit) {
  std::vector<uint8_t> data = {0x00, 0xff, 0x5a, 0xa5};
  std::vector<uint8_t> orig = data;
  FaultInjector::FlipBit(12345, &data);
  int diff_bits = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    uint8_t x = data[i] ^ orig[i];
    while (x != 0) {
      diff_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(diff_bits, 1);
  // Empty payloads are a safe no-op.
  std::vector<uint8_t> empty;
  FaultInjector::FlipBit(12345, &empty);
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectorTest, DisarmAllSilencesEverySite) {
  FaultInjector inj;
  inj.Arm(fault::kStoreWrite, FaultSpec::Permanent());
  inj.Arm(fault::kStoreRead, FaultSpec::Permanent());
  inj.Arm(fault::kLogAppend, FaultSpec::CrashOnce());
  EXPECT_EQ(inj.armed_count(), 3u);
  inj.DisarmAll();
  EXPECT_EQ(inj.armed_count(), 0u);
  EXPECT_TRUE(inj.MaybeFail(fault::kStoreWrite).ok());
  EXPECT_TRUE(inj.MaybeFail(fault::kStoreRead).ok());
  EXPECT_TRUE(inj.MaybeFail(fault::kLogAppend).ok());
}

TEST(FaultInjectorTest, RearmResetsCounters) {
  FaultInjector inj;
  inj.Arm(fault::kStoreWrite, FaultSpec::CrashOnHit(2));
  (void)inj.Hit(fault::kStoreWrite);
  inj.Arm(fault::kStoreWrite, FaultSpec::CrashOnHit(2));  // re-arm
  EXPECT_EQ(inj.site_stats(fault::kStoreWrite).hits, 0u);
  EXPECT_FALSE(static_cast<bool>(inj.Hit(fault::kStoreWrite)));
  EXPECT_TRUE(static_cast<bool>(inj.Hit(fault::kStoreWrite)));
}

}  // namespace
}  // namespace loglog
