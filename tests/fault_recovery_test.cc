#include <gtest/gtest.h>

#include "common/retry.h"
#include "fault/fault_injector.h"
#include "ops/function_registry.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "sim/reference_executor.h"
#include "sim/workload.h"

namespace loglog {
namespace {

constexpr FuncId kFanOut = kFuncFirstCustom + 0x60;

void RegisterFanOut() {
  FunctionRegistry::Global().Register(
      kFanOut,
      [](const OperationDesc&, const std::vector<ObjectValue>& reads,
         std::vector<ObjectValue>* writes) {
        (*writes)[0] = reads[0];
        (*writes)[1] = reads[0];
        return Status::OK();
      });
}

OperationDesc FanOutOp(ObjectId src, ObjectId a, ObjectId b) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFanOut;
  op.reads = {src};
  op.writes = {a, b};
  return op;
}

// Transient device errors are absorbed by the bounded-retry layer: the
// workload completes with no user-visible failure, and the retries are
// visible only in the I/O counters.
TEST(FaultRecoveryTest, TransientErrorsAreRetried) {
  EngineOptions opts;
  CrashHarness harness(opts, 101);
  MixedWorkloadOptions wopts;
  wopts.seed = 101;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }
  FaultInjector& inj = harness.disk().fault_injector();
  inj.Arm(fault::kStoreWrite, FaultSpec::TransientTimes(2));
  inj.Arm(fault::kLogForce, FaultSpec::TransientTimes(1));
  for (int i = 0; i < 40; ++i) {
    Status st = harness.Execute(workload.Next());
    ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
  }
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  EXPECT_GT(harness.disk().stats().io_retries, 0u);
  EXPECT_EQ(inj.total_fires(), 3u);  // every armed failure was consumed
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

// A permanent device error exhausts the retry budget and surfaces as a
// clean IoError — not a crash, not silent corruption. After the "device
// is replaced" (disarm), the same flush succeeds.
TEST(FaultRecoveryTest, PermanentErrorSurfacesCleanly) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 102);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "durable-value")).ok());
  FaultInjector& inj = harness.disk().fault_injector();
  inj.Arm(fault::kStoreWrite, FaultSpec::Permanent());
  Status st = harness.engine().FlushAll();
  EXPECT_TRUE(st.IsIoError()) << st.ToString();
  EXPECT_NE(st.message().find("permanent"), std::string::npos);
  EXPECT_GE(harness.disk().stats().io_retries,
            static_cast<uint64_t>(kMaxIoRetries));
  inj.DisarmAll();
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

// The headline corruption scenario: a write is silently bit-flipped on
// the media under a stale checksum. Without the checksum a read would
// return plausible-but-wrong bytes; with it the read reports Corruption,
// and recovery classifies the object as a media failure and repairs the
// database from the backup image plus log replay.
TEST(FaultRecoveryTest, BitFlipDetectedAndRepairedFromBackup) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 103);
  for (ObjectId id = 1; id <= 6; ++id) {
    ASSERT_TRUE(
        harness.Execute(MakeCreate(id, "steady-state-payload")).ok());
  }
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.TakeBackup().ok());
  // Post-backup history, so repair must replay the log past the image.
  ASSERT_TRUE(harness.Execute(MakeAppend(2, "-post-backup")).ok());
  ASSERT_TRUE(harness.Execute(MakeCopy(7, 2)).ok());

  harness.disk().fault_injector().Arm(fault::kStoreWrite,
                                      FaultSpec::BitFlipOnce(0xbadb17));
  ASSERT_TRUE(harness.engine().FlushAll().ok());  // the flip is silent

  std::vector<ObjectId> corrupt = harness.disk().store().CorruptObjects();
  ASSERT_EQ(corrupt.size(), 1u);
  ObjectId victim = corrupt[0];

  // Ground truth for the victim from the reference replay.
  ReferenceExecutor ref;
  ASSERT_TRUE(ref.ReplayLog(harness.disk().log().ArchiveContents()).ok());
  ObjectValue expected;
  ASSERT_TRUE(ref.Get(victim, &expected).ok());

  // The damaged bytes would read back as a plausible value — provably
  // wrong, and nothing in the raw read says so. The checksum is what
  // turns the silent wrong answer into a detectable Corruption.
  StoredObject raw;
  Status read_st = harness.disk().store().Read(victim, &raw);
  EXPECT_TRUE(read_st.IsCorruption()) << read_st.ToString();
  EXPECT_EQ(raw.value.size(), expected.size());
  EXPECT_NE(raw.value, expected);

  harness.Crash();
  RecoveryStats stats;
  Status st = harness.Recover(&stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.corrupt_objects, 1u);
  EXPECT_TRUE(stats.media_recovery);
  EXPECT_GE(stats.media_repairs, 1u);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  StoredObject repaired;
  ASSERT_TRUE(harness.disk().store().Read(victim, &repaired).ok());
  EXPECT_EQ(repaired.value, expected);
}

// Corruption repair needs no backup: the verification archive reaches
// back to the beginning of history, so replay alone rebuilds the state.
TEST(FaultRecoveryTest, BitFlipRepairedWithoutBackup) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 104);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "alpha-payload")).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(2, "beta-payload")).ok());
  harness.disk().fault_injector().Arm(fault::kStoreWrite,
                                      FaultSpec::BitFlipOnce(0xf00d));
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_FALSE(harness.disk().store().CorruptObjects().empty());

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  EXPECT_TRUE(stats.media_recovery);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

// A lost single-object write (acknowledged, never persisted) is caught
// by the vSI REDO test: the stable object is missing/stale, so the
// operation does not test as installed and is redone. (Lost writes of
// multi-write operations are NOT recoverable — any surviving sibling
// write makes every redo test skip the operation — which is why the
// crash storm never arms this action; see EXPERIMENTS.md.)
TEST(FaultRecoveryTest, LostSingleWriteRedoneUnderVsiTest) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  opts.redo_test = RedoTestKind::kVsi;
  CrashHarness harness(opts, 105);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "must-survive")).ok());
  harness.disk().fault_injector().Arm(fault::kStoreWrite,
                                      FaultSpec::LostOnce());
  ASSERT_TRUE(harness.engine().FlushAll().ok());  // ack without persist
  EXPECT_FALSE(harness.disk().store().Exists(1));

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  EXPECT_EQ(stats.ops_redone, 1u);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  EXPECT_TRUE(harness.disk().store().Exists(1));
}

// Crash during recovery itself: a fault kills the flush-transaction
// completion mid-write; the second recovery completes the remainder
// idempotently.
TEST(FaultRecoveryTest, CrashDuringRecoveryIsIdempotent) {
  RegisterFanOut();
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kFlushTransaction;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 106);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "fan-source")).ok());
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.Execute(FanOutOp(1, 2, 3)).ok());

  FaultInjector& inj = harness.disk().fault_injector();
  inj.Arm(fault::kCmAfterFlushTxnCommit, FaultSpec::CrashOnce());
  ASSERT_TRUE(harness.engine().PurgeOne().IsAborted());
  harness.Crash();

  // First recovery attempt dies on its very first completion write.
  inj.Arm(fault::kStoreWrite, FaultSpec::CrashOnHit(1));
  RecoveryStats stats;
  Status st = harness.Recover(&stats);
  ASSERT_TRUE(st.IsAborted()) << st.ToString();

  harness.Crash();
  ASSERT_TRUE(harness.Recover(&stats).ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  StoredObject obj;
  ASSERT_TRUE(harness.disk().store().Read(2, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "fan-source");
  ASSERT_TRUE(harness.disk().store().Read(3, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "fan-source");
}

// A torn log force through the device fault site: the force reports
// Aborted, the log manager refuses to ack (and poisons itself), and
// recovery trims the torn tail.
TEST(FaultRecoveryTest, TornLogForcePoisonsUntilRecovery) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 107);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "first")).ok());
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(2, "second")).ok());

  harness.disk().fault_injector().Arm(fault::kLogAppend,
                                      FaultSpec::TornOnce(0x7ea2));
  Lsn pending = harness.engine().log().last_assigned_lsn();
  Status st = harness.engine().log().Force(pending);
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  // Nothing was acknowledged; further forces are refused until recovery.
  EXPECT_LT(harness.engine().log().last_stable_lsn(), pending);
  EXPECT_TRUE(harness.engine().log().Force(pending).IsFailedPrecondition());

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  EXPECT_TRUE(stats.torn_tail);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  // Object 1's create was acked before the tear and must have survived.
  EXPECT_TRUE(harness.disk().store().Exists(1));
}

}  // namespace
}  // namespace loglog
