// Flight recorder and black-box format: ring wrap-around, concurrent
// writers (raced under TSan in the sanitizer CI legs), snapshots taken
// while writers are mid-flight, the thread-name registry, and
// encode/decode of the *.blackbox artifact including a deterministic
// decode fuzz — a corrupted dump must fail with Corruption, never crash.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/blackbox.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace loglog {
namespace {

// Payload scheme every writer uses so a reader can detect a torn slot:
// `a` must always equal `lsn ^ kStamp`. A slot mixing two events' fields
// breaks the invariant.
constexpr uint64_t kStamp = 0x5aa5c33c0f0f5a5aull;

void RecordStamped(FlightRecorder* rec, uint64_t lsn, uint64_t b) {
  rec->Record(FlightEventType::kWalAppend, lsn, lsn ^ kStamp, b);
}

void ExpectCoherent(const std::vector<FlightEventView>& events) {
  uint64_t prev_seq = 0;
  bool first = true;
  for (const FlightEventView& ev : events) {
    ASSERT_EQ(ev.a, ev.lsn ^ kStamp)
        << "torn slot at seq " << ev.seq << ": lsn=" << ev.lsn;
    ASSERT_EQ(ev.type, FlightEventType::kWalAppend);
    if (!first) {
      ASSERT_GT(ev.seq, prev_seq) << "snapshot not in sequence order";
    }
    prev_seq = ev.seq;
    first = false;
  }
}

TEST(FlightRecorderTest, WrapAroundKeepsNewestEvents) {
  FlightRecorder rec(8);
  ASSERT_EQ(rec.capacity(), 8u);
  for (uint64_t i = 1; i <= 20; ++i) RecordStamped(&rec, i, 0);
  EXPECT_EQ(rec.total_recorded(), 20u);
  std::vector<FlightEventView> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  ExpectCoherent(events);
  // The ring holds exactly the 8 newest, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].lsn, 13 + i);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(9);
  EXPECT_EQ(rec.capacity(), 16u);
}

TEST(FlightRecorderTest, DisableDropsEvents) {
  FlightRecorder rec(8);
  rec.Disable();
  RecordStamped(&rec, 1, 0);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
  rec.Enable();
  RecordStamped(&rec, 2, 0);
  EXPECT_EQ(rec.total_recorded(), 1u);
}

// Four writers lapping each other in a small ring: every surviving slot
// must be one writer's event, fields unmixed. This is the TSan target
// for the per-slot seqlock.
TEST(FlightRecorderTest, ConcurrentWritersNeverTearSlots) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  FlightRecorder rec(1024);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        RecordStamped(&rec, (static_cast<uint64_t>(t) << 32) | i, t);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(rec.total_recorded(), kThreads * kPerThread);
  std::vector<FlightEventView> events = rec.Snapshot();
  EXPECT_EQ(events.size(), rec.capacity());
  ExpectCoherent(events);
}

// Snapshots raced against a live writer: every view must be coherent
// (torn slots discarded, never returned), and a quiesced final snapshot
// sees a full ring.
TEST(FlightRecorderTest, DumpWhileRecordingStaysCoherent) {
  FlightRecorder rec(256);
  std::atomic<bool> stop{false};
  std::thread writer([&rec, &stop] {
    // Keep going until told to stop AND the ring has wrapped at least
    // twice, so the final snapshot always sees a full ring.
    uint64_t lsn = 0;
    while (!stop.load(std::memory_order_relaxed) || lsn < 1024) {
      RecordStamped(&rec, ++lsn, 0);
    }
  });
  for (int i = 0; i < 200; ++i) {
    std::vector<FlightEventView> events = rec.Snapshot();
    ExpectCoherent(events);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  std::vector<FlightEventView> events = rec.Snapshot();
  EXPECT_EQ(events.size(), rec.capacity());
  ExpectCoherent(events);
}

TEST(FlightRecorderTest, InternAssignsStableIds) {
  FlightRecorder rec(8);
  const uint32_t a = rec.Intern("wal.force.crash");
  const uint32_t b = rec.Intern("cm.flush.torn");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.Intern("wal.force.crash"), a);
  std::vector<std::string> strings = rec.InternedStrings();
  ASSERT_GE(strings.size(), 2u);
  EXPECT_EQ(strings[a - 1], "wal.force.crash");
  EXPECT_EQ(strings[b - 1], "cm.flush.torn");
}

TEST(FlightRecorderTest, EveryEventTypeHasAName) {
  for (uint16_t t = 0; t <= static_cast<uint16_t>(
                               FlightEventType::kBlackBoxDump);
       ++t) {
    const char* name = FlightEventTypeName(static_cast<FlightEventType>(t));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "");
  }
}

TEST(ThreadRegistryTest, ScopedNamesStickAndRestore) {
  ThreadRegistry& reg = ThreadRegistry::Global();
  const uint32_t tid = reg.CurrentTid();
  const std::string before = reg.NameOf(tid);
  {
    ScopedThreadName outer("outer-name");
    EXPECT_EQ(reg.NameOf(tid), "outer-name");
    {
      ScopedThreadName inner("inner-name");
      EXPECT_EQ(reg.NameOf(tid), "inner-name");
    }
    EXPECT_EQ(reg.NameOf(tid), "outer-name");
  }
  // The first name a thread ever takes is sticky (dead workers keep
  // their label in dumps); an outer scope's restore keeps it.
  EXPECT_EQ(reg.NameOf(tid), before.empty() ? "outer-name" : before);
}

TEST(ThreadRegistryTest, DistinctThreadsGetDistinctTids) {
  const uint32_t main_tid = ThreadRegistry::Global().CurrentTid();
  uint32_t other_tid = main_tid;
  std::thread t([&other_tid] {
    ScopedThreadName name("registry-test-worker");
    other_tid = ThreadRegistry::Global().CurrentTid();
  });
  t.join();
  EXPECT_NE(other_tid, main_tid);
  EXPECT_EQ(ThreadRegistry::Global().NameOf(other_tid),
            "registry-test-worker");
}

// Encode -> decode must reproduce the ring, the intern table, thread
// names, and the embedded snapshots byte for byte.
TEST(BlackBoxTest, EncodeDecodeRoundTrip) {
  FlightRecorder rec(64);
  const uint32_t site = rec.Intern("wal.append.crash");
  rec.Record(FlightEventType::kFaultFire, 0, site, 2);
  for (uint64_t i = 1; i <= 10; ++i) RecordStamped(&rec, i, 7);
  MetricsRegistry reg;
  reg.GetCounter("bb.counter")->Inc(41);
  reg.GetGauge("bb.gauge")->Set(-5);
  reg.GetHistogram("bb.hist")->Observe(99);
  MetricsSnapshot snap = reg.Snapshot();

  std::vector<uint8_t> bytes;
  EncodeBlackBox(rec, snap, "unit-test", &bytes);
  BlackBoxDump dump;
  ASSERT_TRUE(DecodeBlackBox(Slice(bytes.data(), bytes.size()), &dump).ok());

  EXPECT_EQ(dump.reason, "unit-test");
  EXPECT_EQ(dump.total_recorded, 11u);
  EXPECT_EQ(dump.capacity, 64u);
  EXPECT_EQ(dump.dropped(), 0u);
  ASSERT_EQ(dump.events.size(), 11u);
  EXPECT_EQ(dump.events.front().type, FlightEventType::kFaultFire);
  ASSERT_GE(dump.strings.size(), site);
  EXPECT_EQ(dump.strings[site - 1], "wal.append.crash");
  EXPECT_NE(dump.metrics_json.find("bb.counter"), std::string::npos);
  EXPECT_NE(dump.metrics_text.find("p99"), std::string::npos);
  // Every embedded JSON document must be loadable.
  EXPECT_TRUE(JsonSyntaxCheck(Slice(dump.build_info_json)).ok());
  EXPECT_TRUE(JsonSyntaxCheck(Slice(dump.metrics_json)).ok());
  EXPECT_TRUE(JsonSyntaxCheck(Slice(dump.health_json)).ok());
  // And the human renderer accepts every event.
  for (const FlightEventView& ev : dump.events) {
    EXPECT_FALSE(DescribeFlightEvent(ev, dump.strings).empty());
  }
}

TEST(BlackBoxTest, WriteFileRoundTrip) {
  const std::string path = testing::TempDir() + "/bb_roundtrip.blackbox";
  ASSERT_TRUE(WriteBlackBoxFile(path, "file-test").ok());
  std::string bytes;
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  BlackBoxDump dump;
  ASSERT_TRUE(DecodeBlackBox(Slice(bytes), &dump).ok());
  EXPECT_EQ(dump.reason, "file-test");
  // The dump records itself: its last event is the kBlackBoxDump marker.
  ASSERT_FALSE(dump.events.empty());
  EXPECT_EQ(dump.events.back().type, FlightEventType::kBlackBoxDump);
}

TEST(BlackBoxTest, DecodeRejectsBadMagicAndTruncation) {
  FlightRecorder rec(8);
  RecordStamped(&rec, 1, 0);
  MetricsRegistry reg;
  std::vector<uint8_t> bytes;
  EncodeBlackBox(rec, reg.Snapshot(), "r", &bytes);

  BlackBoxDump dump;
  std::vector<uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_TRUE(
      DecodeBlackBox(Slice(bad.data(), bad.size()), &dump).IsCorruption());
  for (size_t len : {size_t{0}, size_t{4}, size_t{12}, bytes.size() - 1}) {
    EXPECT_TRUE(DecodeBlackBox(Slice(bytes.data(), len), &dump).IsCorruption())
        << "truncated to " << len;
  }
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_TRUE(DecodeBlackBox(Slice(padded.data(), padded.size()), &dump)
                  .IsCorruption());
}

// Deterministic decode fuzz: random single-byte flips, truncations, and
// pure-garbage buffers. The CRC seal means every mutation must surface
// as Corruption; the real assertion is that none of them crash or hang.
TEST(BlackBoxTest, DecodeFuzzNeverCrashes) {
  FlightRecorder rec(32);
  const uint32_t site = rec.Intern("fuzz.site");
  for (uint64_t i = 1; i <= 40; ++i) {
    rec.Record(static_cast<FlightEventType>(1 + (i % 14)), i, site, i * 3);
  }
  MetricsRegistry reg;
  reg.GetHistogram("fuzz.hist")->Observe(7);
  std::vector<uint8_t> bytes;
  EncodeBlackBox(rec, reg.Snapshot(), "fuzz", &bytes);

  Random rng(20260808);
  BlackBoxDump dump;
  for (int round = 0; round < 400; ++round) {
    std::vector<uint8_t> mutated = bytes;
    switch (rng.Uniform(3)) {
      case 0:  // single byte flipped
        mutated[rng.Uniform(mutated.size())] ^=
            static_cast<uint8_t>(1 + rng.Uniform(255));
        break;
      case 1:  // truncated tail
        mutated.resize(rng.Uniform(mutated.size()));
        break;
      case 2: {  // flip then truncate
        mutated[rng.Uniform(mutated.size())] ^= 0x80;
        mutated.resize(1 + rng.Uniform(mutated.size()));
        break;
      }
    }
    EXPECT_TRUE(DecodeBlackBox(Slice(mutated.data(), mutated.size()), &dump)
                    .IsCorruption())
        << "round " << round;
  }
  for (int round = 0; round < 100; ++round) {
    std::vector<uint8_t> garbage = rng.Bytes(rng.Uniform(512));
    EXPECT_TRUE(DecodeBlackBox(Slice(garbage.data(), garbage.size()), &dump)
                    .IsCorruption());
  }
}

TEST(BlackBoxTest, AutoDumpHonorsDirAndCap) {
  const std::string dir = testing::TempDir();
  SetBlackBoxDir(dir, /*max_files=*/2);
  const std::string first = BlackBoxAutoDump("auto/test one");
  const std::string second = BlackBoxAutoDump("auto-two");
  const std::string third = BlackBoxAutoDump("auto-three");
  SetBlackBoxDir("");
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_TRUE(third.empty()) << "cap of 2 not enforced: " << third;
  // The reason is sanitized into the filename, and the file decodes.
  EXPECT_EQ(first.find(dir), 0u);
  EXPECT_NE(first.find("auto_test_one-1.blackbox"), std::string::npos)
      << first;
  std::string bytes;
  FILE* f = std::fopen(first.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  BlackBoxDump dump;
  EXPECT_TRUE(DecodeBlackBox(Slice(bytes), &dump).ok());
  std::remove(first.c_str());
  std::remove(second.c_str());
}

}  // namespace
}  // namespace loglog
