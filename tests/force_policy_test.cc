#include <gtest/gtest.h>

#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

LogRecord OpRecord(OperationDesc op) {
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.op = std::move(op);
  return rec;
}

// Group-commit batching: the ForcePolicy decides how much of the
// volatile buffer one Force pushes to the device. Forcing more than
// requested is always WAL-safe (stability is monotone), and coalescing
// turns later forces into no-ops — fewer device forces per committed
// obligation, the metric bench_logging_cost reports.

TEST(ForcePolicyTest, ImmediateForcesExactPrefix) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  for (int i = 0; i < 6; ++i) {
    log.Append(OpRecord(MakePhysicalWrite(1, "x")));
  }
  ASSERT_TRUE(log.Force(2).ok());
  EXPECT_EQ(log.last_stable_lsn(), 2u);
  EXPECT_EQ(log.volatile_record_count(), 4u);
  EXPECT_EQ(log.records_coalesced(), 0u);
  EXPECT_EQ(disk.stats().log_forces, 1u);
}

TEST(ForcePolicyTest, GroupForcesWholeBuffer) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  log.set_force_policy(ForcePolicy::kGroup);
  for (int i = 0; i < 6; ++i) {
    log.Append(OpRecord(MakePhysicalWrite(1, "x")));
  }
  // Forcing through LSN 2 drags the other four along in the same device
  // append.
  ASSERT_TRUE(log.Force(2).ok());
  EXPECT_EQ(log.last_stable_lsn(), 6u);
  EXPECT_EQ(log.volatile_record_count(), 0u);
  EXPECT_EQ(log.records_coalesced(), 4u);
  EXPECT_EQ(disk.stats().log_forces, 1u);

  // Later forces for the coalesced records are satisfied already.
  ASSERT_TRUE(log.Force(5).ok());
  ASSERT_TRUE(log.Force(6).ok());
  EXPECT_EQ(disk.stats().log_forces, 1u);

  // The batched append framed every record readably.
  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(LogManager::ReadStable(disk.log(), &records, &torn, &next,
                                     &valid_end)
                  .ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records.back().lsn, 6u);
  EXPECT_EQ(next, 7u);
}

TEST(ForcePolicyTest, SizeThresholdBoundsTheBatch) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  LogRecord sample = OpRecord(MakePhysicalWrite(1, "payload"));
  const size_t framed = sample.EncodedSize() + 8;  // frame = len + crc
  // Budget fits the two requested records plus exactly one extra.
  log.set_force_policy(ForcePolicy::kSizeThreshold, 3 * framed);
  for (int i = 0; i < 6; ++i) {
    log.Append(OpRecord(MakePhysicalWrite(1, "payload")));
  }
  ASSERT_TRUE(log.Force(2).ok());
  EXPECT_EQ(log.last_stable_lsn(), 3u);
  EXPECT_EQ(log.volatile_record_count(), 3u);
  EXPECT_EQ(log.records_coalesced(), 1u);
  EXPECT_EQ(disk.stats().log_forces, 1u);

  // The budget never shrinks a force below what was asked for: a request
  // bigger than the budget still goes out whole (in one append).
  ASSERT_TRUE(log.Force(6).ok());
  EXPECT_EQ(log.last_stable_lsn(), 6u);
  EXPECT_EQ(disk.stats().log_forces, 2u);
}

TEST(ForcePolicyTest, GroupCutsDeviceForcesEndToEnd) {
  // Same workload twice; group commit must reach the same recovered
  // state with strictly fewer device forces.
  uint64_t forces[2];
  for (int mode = 0; mode < 2; ++mode) {
    EngineOptions opts;
    opts.flush_policy = FlushPolicy::kFlushTransaction;
    opts.purge_threshold_ops = 8;  // frequent flushes -> frequent forces
    opts.checkpoint_interval_ops = 40;
    opts.wal_force_policy =
        mode == 0 ? ForcePolicy::kImmediate : ForcePolicy::kGroup;
    CrashHarness harness(opts, /*seed=*/7);

    MixedWorkloadOptions wopts;
    wopts.seed = 1234;
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      ASSERT_TRUE(harness.Execute(op).ok());
    }
    for (int i = 0; i < 150; ++i) {
      Status st = harness.Execute(workload.Next());
      ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
    }
    forces[mode] = harness.disk().stats().log_forces;

    harness.Crash(/*tear_tail=*/false);
    ASSERT_TRUE(harness.Recover().ok());
    Status st = harness.VerifyAgainstReference();
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(harness.engine().cache().CheckInvariants().ok());
  }
  EXPECT_LT(forces[1], forces[0])
      << "group commit should need fewer device forces";
}

TEST(ForcePolicyTest, GroupCommitSurvivesTornTail) {
  EngineOptions opts;
  opts.wal_force_policy = ForcePolicy::kGroup;
  opts.purge_threshold_ops = 8;
  CrashHarness harness(opts, /*seed=*/11);
  MixedWorkloadOptions wopts;
  wopts.seed = 99;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 60; ++i) {
      Status st = harness.Execute(workload.Next());
      ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
    }
    harness.Crash(/*tear_tail=*/true);
    ASSERT_TRUE(harness.Recover().ok());
    Status st = harness.VerifyAgainstReference();
    ASSERT_TRUE(st.ok()) << st.ToString() << " round " << round;
  }
}

}  // namespace
}  // namespace loglog
