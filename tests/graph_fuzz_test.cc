#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/refined_write_graph.h"
#include "graph/write_graph_w.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "storage/stable_store.h"

namespace loglog {
namespace {

// Randomized structural fuzz: arbitrary read/write-set operations keep
// both graphs' invariants intact, every operation installs exactly once,
// and minimal-node installation always makes progress.
class GraphFuzzTest : public testing::TestWithParam<uint64_t> {};

PendingOp RandomOp(Random& rng, Lsn lsn, ObjectId universe) {
  OperationDesc d;
  size_t n_writes = 1 + rng.Uniform(3);
  size_t n_reads = rng.Uniform(4);
  while (d.writes.size() < n_writes) {
    ObjectId x = 1 + rng.Uniform(universe);
    if (!d.WritesObject(x)) d.writes.push_back(x);
  }
  while (d.reads.size() < n_reads) {
    ObjectId x = 1 + rng.Uniform(universe);
    if (!d.ReadsObject(x)) d.reads.push_back(x);
  }
  return PendingOp::FromDesc(lsn, d);
}

TEST_P(GraphFuzzTest, InvariantsAndFullDrain) {
  Random rng(GetParam());
  for (WriteGraph* graph :
       std::initializer_list<WriteGraph*>{new WriteGraphW,
                                          new RefinedWriteGraph}) {
    std::unique_ptr<WriteGraph> owned(graph);
    std::set<Lsn> pending;
    Lsn next_lsn = 1;
    size_t installed = 0;
    for (int round = 0; round < 400; ++round) {
      if (pending.size() < 40 || !rng.OneIn(3)) {
        PendingOp op = RandomOp(rng, next_lsn++, /*universe=*/12);
        pending.insert(op.lsn);
        graph->AddOperation(op);
      } else {
        NodeId v = graph->MinimalNode();
        ASSERT_NE(v, kNoNode);
        InstallResult result;
        ASSERT_TRUE(graph->RemoveNode(v, &result).ok());
        for (Lsn lsn : result.installed_ops) {
          ASSERT_EQ(pending.erase(lsn), 1u) << "op installed twice";
          ++installed;
        }
      }
      if (round % 16 == 0) {
        ASSERT_EQ(graph->CheckInvariants().ToString(), "OK")
            << graph->Kind() << " seed=" << GetParam();
      }
    }
    // Drain: minimal-node installation must terminate with every op
    // installed exactly once.
    while (!graph->empty()) {
      NodeId v = graph->MinimalNode();
      ASSERT_NE(v, kNoNode);
      InstallResult result;
      ASSERT_TRUE(graph->RemoveNode(v, &result).ok());
      for (Lsn lsn : result.installed_ops) {
        ASSERT_EQ(pending.erase(lsn), 1u);
        ++installed;
      }
    }
    EXPECT_TRUE(pending.empty());
    EXPECT_EQ(installed, static_cast<size_t>(next_lsn - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzzTest,
                         testing::Values(101, 202, 303, 404, 505, 606, 707,
                                         808));

// Differential property: for the same op stream, rW never flushes more
// objects than W does (vars(n) in rW is a refinement), measured as the
// total number of object-flush slots over a full drain.
TEST(GraphDifferentialTest, RefinedFlushesNoMoreObjects) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Random rng_w(seed), rng_rw(seed);
    WriteGraphW w;
    RefinedWriteGraph rw;
    for (Lsn lsn = 1; lsn <= 200; ++lsn) {
      w.AddOperation(RandomOp(rng_w, lsn, 10));
      rw.AddOperation(RandomOp(rng_rw, lsn, 10));
    }
    auto drain = [](WriteGraph& g) {
      uint64_t flushed = 0;
      while (!g.empty()) {
        InstallResult r;
        EXPECT_TRUE(g.RemoveNode(g.MinimalNode(), &r).ok());
        flushed += r.flush_objects.size();
      }
      return flushed;
    };
    uint64_t w_flushed = drain(w);
    uint64_t rw_flushed = drain(rw);
    EXPECT_LE(rw_flushed, w_flushed) << "seed " << seed;
  }
}

// The WAL auditor actually detects violations (self-test of the fixture
// used throughout the crash matrix).
TEST(WalAuditorTest, FlagsUnloggedFlush) {
  CrashHarness harness(EngineOptions{}, 1);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "x")).ok());
  // Sneak a write past the WAL: vSI 999 was never forced.
  harness.disk().store().Write(1, "illegal", 999);
  EXPECT_TRUE(harness.disk().store().audit_status().IsCorruption());
}

}  // namespace
}  // namespace loglog
