#include <gtest/gtest.h>

#include "graph/pending_op.h"
#include "graph/refined_write_graph.h"
#include "graph/write_graph_w.h"
#include "ops/op_builder.h"

namespace loglog {
namespace {

PendingOp Op(Lsn lsn, std::vector<ObjectId> reads,
             std::vector<ObjectId> writes) {
  OperationDesc d;
  d.reads = std::move(reads);
  d.writes = std::move(writes);
  return PendingOp::FromDesc(lsn, d);
}

constexpr ObjectId kX = 1, kY = 2, kZ = 3;

// Figure 1(a): A: Y <- f(X,Y); B: X <- g(Y). The paper's flush-order
// discussion: Y must flush before a subsequent change to X, and once B
// runs, W requires {X,Y} to flush atomically.
TEST(WriteGraphWTest, Figure1FormsOneAtomicNode) {
  WriteGraphW w;
  w.AddOperation(Op(1, {kX, kY}, {kY}));  // A
  w.AddOperation(Op(2, {kY}, {kX}));      // B
  w.Normalize();
  ASSERT_EQ(w.CheckInvariants().ToString(), "OK");
  // A read X which B writes -> edge A->B; distinct writesets keep two
  // nodes in W, ordered Y before X.
  ASSERT_EQ(w.node_count(), 2u);
  NodeId first = w.MinimalNode();
  const GraphNode* n = w.Find(first);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->vars, (std::set<ObjectId>{kY}));
  InstallResult r;
  ASSERT_TRUE(w.RemoveNode(first, &r).ok());
  EXPECT_EQ(r.installed_ops, (std::vector<Lsn>{1}));
  NodeId second = w.MinimalNode();
  const GraphNode* n2 = w.Find(second);
  EXPECT_EQ(n2->vars, (std::set<ObjectId>{kX}));
}

// Section 4's cycle example: (a) Y=f(X,Y); (b) X=g(Y); (c) Y=h(Y).
// After (c), X must flush before the new Y, creating a cycle with the
// earlier Y-before-X order; both graphs collapse it into one node with a
// multi-object atomic flush set {X,Y}.
TEST(RefinedWriteGraphTest, Section4CycleCollapses) {
  RefinedWriteGraph rw;
  rw.AddOperation(Op(1, {kX, kY}, {kY}));  // (a) app read form
  rw.AddOperation(Op(2, {kY}, {kX}));      // (b) app logical write form
  EXPECT_EQ(rw.node_count(), 2u);
  rw.AddOperation(Op(3, {kY}, {kY}));      // (c) app execute form
  rw.Normalize();
  ASSERT_EQ(rw.CheckInvariants().ToString(), "OK");
  ASSERT_EQ(rw.node_count(), 1u);
  NodeId v = rw.MinimalNode();
  EXPECT_EQ(rw.Find(v)->vars, (std::set<ObjectId>{kX, kY}));
  EXPECT_GE(rw.stats().cycle_collapses, 1u);
}

// Figure 7: A writes {X,Y}; B (elsewhere) reads X; C blind-writes X.
// In W, X and Y stay in one atomic flush set. In rW, C peels X out:
// vars(l)={Y}, Notx(l)={X}, and the inverse write-read edge forces B's
// node to install before l.
TEST(RefinedWriteGraphTest, Figure7BlindWritePeelsVars) {
  RefinedWriteGraph rw;
  rw.AddOperation(Op(1, {kX, kY}, {kX, kY}));  // A
  rw.AddOperation(Op(2, {kX}, {kZ}));          // B reads Lastw(l, X)
  rw.AddOperation(Op(3, {}, {kX}));            // C: blind write of X
  rw.Normalize();
  ASSERT_EQ(rw.CheckInvariants().ToString(), "OK");
  ASSERT_EQ(rw.node_count(), 3u);

  NodeId l = rw.NodeOfOp(1);
  NodeId b = rw.NodeOfOp(2);
  NodeId m = rw.NodeOfOp(3);
  EXPECT_EQ(rw.Find(l)->vars, (std::set<ObjectId>{kY}));
  EXPECT_EQ(rw.Find(l)->notx, (std::set<ObjectId>{kX}));
  EXPECT_EQ(rw.Find(m)->vars, (std::set<ObjectId>{kX}));
  // Install order must be B, then l, then m.
  EXPECT_TRUE(rw.Find(l)->preds.contains(b));   // inverse write-read
  EXPECT_TRUE(rw.Find(m)->preds.contains(l));   // write-write
  EXPECT_TRUE(rw.Find(m)->preds.contains(b));   // read-write (B read X)

  // Installing l flushes only Y but installs X's writer too.
  InstallResult r;
  NodeId first = rw.MinimalNode();
  EXPECT_EQ(first, b);
  ASSERT_TRUE(rw.RemoveNode(first, &r).ok());
  NodeId second = rw.MinimalNode();
  EXPECT_EQ(second, l);
  ASSERT_TRUE(rw.RemoveNode(second, &r).ok());
  EXPECT_EQ(r.flush_objects, (std::vector<ObjectId>{kY}));
  EXPECT_EQ(r.unflushed_objects, (std::vector<ObjectId>{kX}));
  // X's rSI becomes C's lSI.
  EXPECT_EQ(rw.FirstUninstalledWriter(kX), 3u);
}

// Same scenario in W: one node must flush {X,Y} atomically, and C joins
// that node (vars never shrink in W).
TEST(WriteGraphWTest, Figure7StaysAtomicInW) {
  WriteGraphW w;
  w.AddOperation(Op(1, {kX, kY}, {kX, kY}));  // A
  w.AddOperation(Op(2, {kX}, {kZ}));          // B
  w.AddOperation(Op(3, {}, {kX}));            // C merges with A's node
  w.Normalize();
  ASSERT_EQ(w.CheckInvariants().ToString(), "OK");
  NodeId l = w.NodeOfOp(1);
  EXPECT_EQ(w.NodeOfOp(3), l);
  EXPECT_EQ(w.Find(l)->vars, (std::set<ObjectId>{kX, kY}));
  EXPECT_TRUE(w.Find(l)->notx.empty());
}

// Physiological operations (single-object, read==write) degenerate to
// per-object nodes with no edges: no flush-order restrictions at all.
TEST(WriteGraphWTest, PhysiologicalOpsDegenerate) {
  WriteGraphW w;
  for (Lsn l = 1; l <= 6; ++l) {
    ObjectId x = 1 + (l % 3);
    w.AddOperation(Op(l, {x}, {x}));
  }
  w.Normalize();
  ASSERT_EQ(w.CheckInvariants().ToString(), "OK");
  EXPECT_EQ(w.node_count(), 3u);
  EXPECT_EQ(w.MinimalNodes().size(), 3u);
}

// An identity write W_IP(X) peels X from a multi-object vars set without
// making the new node anyone's predecessor.
TEST(RefinedWriteGraphTest, IdentityWritePeeling) {
  RefinedWriteGraph rw;
  rw.AddOperation(Op(1, {kX, kY}, {kX, kY}));  // one op writes both
  NodeId l = rw.NodeOfOp(1);
  ASSERT_EQ(rw.Find(l)->vars.size(), 2u);
  // CM-injected identity write of X: blind single-object write.
  rw.AddOperation(Op(2, {}, {kX}));
  rw.Normalize();
  ASSERT_EQ(rw.CheckInvariants().ToString(), "OK");
  EXPECT_EQ(rw.Find(l)->vars, (std::set<ObjectId>{kY}));
  EXPECT_EQ(rw.Find(l)->notx, (std::set<ObjectId>{kX}));
  NodeId m = rw.NodeOfOp(2);
  EXPECT_TRUE(rw.Find(m)->preds.contains(l));
  EXPECT_TRUE(rw.Find(m)->succs.empty());
  EXPECT_TRUE(rw.Find(l)->preds.empty());  // l still minimal
}

// Merging on exposure: two ops exposed-writing the same object share a
// node; a third blind write of an unrelated object does not merge.
TEST(RefinedWriteGraphTest, MergeOnlyOnExposedOverlap) {
  RefinedWriteGraph rw;
  rw.AddOperation(Op(1, {kX}, {kX}));
  rw.AddOperation(Op(2, {kX}, {kX}));  // exposed overlap -> merge
  EXPECT_EQ(rw.NodeOfOp(1), rw.NodeOfOp(2));
  rw.AddOperation(Op(3, {}, {kY}));    // unrelated blind write
  EXPECT_NE(rw.NodeOfOp(3), rw.NodeOfOp(1));
  rw.Normalize();
  EXPECT_EQ(rw.node_count(), 2u);
}

// In rW a blind overwrite of the same object creates a new node and the
// old one's vars empty out (install-without-any-flush is possible).
TEST(RefinedWriteGraphTest, BlindOverwriteEmptiesVars) {
  RefinedWriteGraph rw;
  rw.AddOperation(Op(1, {}, {kX}));  // physical write
  rw.AddOperation(Op(2, {}, {kX}));  // blind overwrite
  rw.Normalize();
  ASSERT_EQ(rw.CheckInvariants().ToString(), "OK");
  NodeId first = rw.NodeOfOp(1);
  NodeId second = rw.NodeOfOp(2);
  ASSERT_NE(first, second);
  EXPECT_TRUE(rw.Find(first)->vars.empty());
  EXPECT_EQ(rw.Find(first)->notx, (std::set<ObjectId>{kX}));
  EXPECT_EQ(rw.Find(second)->vars, (std::set<ObjectId>{kX}));
  // Installing the first node flushes nothing.
  InstallResult r;
  ASSERT_EQ(rw.MinimalNode(), first);
  ASSERT_TRUE(rw.RemoveNode(first, &r).ok());
  EXPECT_TRUE(r.flush_objects.empty());
  EXPECT_EQ(r.unflushed_objects, (std::vector<ObjectId>{kX}));
}

// Read-write edges order readers before later writers in both graphs.
TEST(WriteGraphWTest, ReadWriteEdgeOrdersReaderFirst) {
  WriteGraphW w;
  w.AddOperation(Op(1, {kX}, {kY}));  // reads X
  w.AddOperation(Op(2, {}, {kX}));    // later write of X
  w.Normalize();
  NodeId reader = w.NodeOfOp(1);
  NodeId writer = w.NodeOfOp(2);
  EXPECT_TRUE(w.Find(writer)->preds.contains(reader));
}

// InstallClosure returns the node plus its transitive predecessors in a
// valid installation order.
TEST(WriteGraphTest, InstallClosureTopoOrder) {
  RefinedWriteGraph rw;
  rw.AddOperation(Op(1, {kX}, {kY}));  // n1 reads X
  rw.AddOperation(Op(2, {}, {kX}));    // n2 writes X: n1 -> n2
  rw.AddOperation(Op(3, {kX}, {kZ}));  // n3 reads X (no edge to n2 yet)
  rw.AddOperation(Op(4, {}, {kX}));    // n4: n3 -> n4, n2 -> n4 (ww)
  rw.Normalize();
  NodeId last = rw.NodeOfOp(4);
  std::vector<NodeId> order = rw.InstallClosure(last);
  // Every predecessor appears before its successor.
  auto pos = [&](NodeId id) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return order.size();
  };
  for (NodeId id : order) {
    for (NodeId p : rw.Find(id)->preds) {
      if (pos(p) < order.size()) {
        EXPECT_LT(pos(p), pos(id));
      }
    }
  }
  EXPECT_EQ(order.back(), last);
}

// Stats: blind writes count vars removals; cycles count collapses.
TEST(RefinedWriteGraphTest, StatsAreTracked) {
  RefinedWriteGraph rw;
  rw.AddOperation(Op(1, {kX, kY}, {kX, kY}));
  rw.AddOperation(Op(2, {}, {kX}));
  EXPECT_EQ(rw.stats().vars_removed, 1u);
  EXPECT_EQ(rw.stats().ww_edges, 1u);
  EXPECT_EQ(rw.stats().ops_added, 2u);
}

}  // namespace
}  // namespace loglog
