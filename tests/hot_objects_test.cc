#include <gtest/gtest.h>

#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

// Section 4's install-without-flush: a hot object's operations are
// installed by identity-write logging during automatic purging; the
// object itself is not written to the stable store until FlushAll.
TEST(HotObjectTest, HotObjectInstallsWithoutFlushing) {
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kIdentityWrites;
  opts.purge_threshold_ops = 4;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  engine.MarkHot(1, true);

  ASSERT_TRUE(engine.Execute(MakeCreate(1, "initial")).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.Execute(
                    MakeDelta(1, 0, "update-" + std::to_string(i)))
                    .ok());
  }
  // Automatic purging deferred the hot object: nothing flushed, no
  // identity writes yet.
  EXPECT_FALSE(disk.store().Exists(1));
  EXPECT_EQ(engine.cache().stats().identity_writes, 0u);

  // Checkpoint installs the hot node by logging (install-without-flush):
  // one identity write, still no stable-store write.
  ASSERT_TRUE(engine.Checkpoint().ok());
  EXPECT_GT(engine.cache().stats().identity_writes, 0u);
  EXPECT_FALSE(disk.store().Exists(1));
  EXPECT_GT(engine.cache().stats().nodes_installed, 0u);
  ASSERT_TRUE(engine.FlushAll().ok());
  EXPECT_TRUE(disk.store().Exists(1));
  ObjectValue v;
  ASSERT_TRUE(engine.Read(1, &v).ok());
  EXPECT_EQ(Slice(v).ToString().substr(0, 7), "update-");
}

TEST(HotObjectTest, CheckpointAdvancesPastHotInstalls) {
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kIdentityWrites;
  opts.purge_threshold_ops = 4;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  engine.MarkHot(1, true);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "initial")).ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(engine.Execute(MakeDelta(1, 0, "x")).ok());
  }
  // The object's rSI advanced to its latest identity write, so the
  // checkpoint can truncate nearly the whole log despite the object
  // never being flushed.
  ASSERT_TRUE(engine.Checkpoint().ok());
  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(LogManager::ReadStable(disk.log(), &records, &torn, &next,
                                     &valid_end)
                  .ok());
  EXPECT_LT(records.size(), 20u);
}

TEST(HotObjectTest, NonIdentityPolicyLeavesHotNodesForFlushAll) {
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kNativeAtomic;
  opts.purge_threshold_ops = 4;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  engine.MarkHot(1, true);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "initial")).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Execute(MakeDelta(1, 0, "x")).ok());
  }
  // Without identity writes there is no install-without-flush; the hot
  // node simply waits (automatic purging skips it).
  EXPECT_FALSE(disk.store().Exists(1));
  EXPECT_FALSE(engine.cache().graph().empty());
  ASSERT_TRUE(engine.FlushAll().ok());
  EXPECT_TRUE(disk.store().Exists(1));
}

TEST(HotObjectTest, CrashRecoveryWithHotObjects) {
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kIdentityWrites;
  opts.purge_threshold_ops = 6;
  CrashHarness harness(opts, 3);
  harness.engine().MarkHot(1, true);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "hot")).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(2, "cold")).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(harness.Execute(MakeAppend(1, "+")).ok());
    ASSERT_TRUE(harness.Execute(MakeCopy(2, 1)).ok());
  }
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

TEST(HotObjectTest, AutoHotDetectionAndCooling) {
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kIdentityWrites;
  opts.purge_threshold_ops = 4;
  // Must trip within one purge window, or each flush resets the counter.
  opts.auto_hot_write_threshold = 3;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "hot-to-be")).ok());
  ASSERT_TRUE(engine.Execute(MakeCreate(2, "written-once")).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine.Execute(MakeDelta(1, 0, "u")).ok());
  }
  // Object 1 crossed the write threshold and became hot (deferred by
  // automatic purging); object 2 was flushed normally.
  EXPECT_TRUE(engine.cache().IsHot(1));
  EXPECT_FALSE(engine.cache().IsHot(2));
  EXPECT_FALSE(disk.store().Exists(1));
  EXPECT_TRUE(disk.store().Exists(2));

  // FlushAll writes it and cools it back down.
  ASSERT_TRUE(engine.FlushAll().ok());
  EXPECT_TRUE(disk.store().Exists(1));
  EXPECT_FALSE(engine.cache().IsHot(1));
}

TEST(HotObjectTest, AutoHotCrashRecovery) {
  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kIdentityWrites;
  opts.purge_threshold_ops = 6;
  opts.auto_hot_write_threshold = 4;
  opts.checkpoint_interval_ops = 25;
  CrashHarness harness(opts, 19);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "counter")).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(harness.Execute(MakeAppend(1, "+")).ok());
  }
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

}  // namespace
}  // namespace loglog
