#include <gtest/gtest.h>

#include <vector>

#include "ops/op_builder.h"
#include "storage/simulated_disk.h"
#include "wal/log_cursor.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

LogRecord OpRecord(Lsn lsn, OperationDesc op) {
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.lsn = lsn;
  rec.op = std::move(op);
  return rec;
}

// Every log consumer (LogManager's constructor, the recovery passes,
// media recovery, ReadStable) now advances the same LogCursor, so their
// next-LSN / valid-byte bookkeeping must agree by construction — these
// tests pin that down, especially on torn tails where the hand-rolled
// walks used to diverge.

TEST(LogCursorTest, WalksCleanLog) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  for (int i = 0; i < 4; ++i) {
    log.Append(OpRecord(0, MakePhysicalWrite(1, "abcdefgh")));
  }
  ASSERT_TRUE(log.ForceAll().ok());

  LogCursor cursor(disk.log());
  LogRecord rec;
  std::vector<Lsn> lsns;
  std::vector<uint64_t> offsets;
  while (cursor.Next(&rec)) {
    lsns.push_back(rec.lsn);
    offsets.push_back(cursor.record_offset());
  }
  EXPECT_TRUE(cursor.status().ok());
  EXPECT_FALSE(cursor.torn());
  EXPECT_EQ(lsns, (std::vector<Lsn>{1, 2, 3, 4}));
  EXPECT_EQ(cursor.records_read(), 4u);
  EXPECT_EQ(cursor.next_lsn(), 5u);
  EXPECT_EQ(cursor.valid_end(), disk.log().end_offset());
  // Offsets are strictly increasing and start at the device start.
  EXPECT_EQ(offsets.front(), disk.log().start_offset());
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_LT(offsets[i - 1], offsets[i]);
  }
}

TEST(LogCursorTest, EmptyLogIsCleanEnd) {
  SimulatedDisk disk;
  LogCursor cursor(disk.log());
  LogRecord rec;
  EXPECT_FALSE(cursor.Next(&rec));
  EXPECT_FALSE(cursor.torn());
  EXPECT_TRUE(cursor.status().ok());
  EXPECT_EQ(cursor.next_lsn(), 1u);
  EXPECT_EQ(cursor.records_read(), 0u);
}

TEST(LogCursorTest, TornTailAgreesWithReadStable) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    for (int i = 0; i < 5; ++i) {
      log.Append(OpRecord(0, MakePhysicalWrite(1, "payload-bytes")));
    }
    ASSERT_TRUE(log.ForceAll().ok());
  }

  // Tear progressively more off the tail, staying strictly inside the
  // final record so every tear leaves a torn (not clean) end; at every
  // tear size the cursor and ReadStable must agree exactly on next_lsn,
  // valid_end, torn-ness and record count — this is the bookkeeping that
  // used to be duplicated (and to drift) between the constructor scan
  // and the recovery scan.
  uint64_t full = disk.log().end_offset();
  uint64_t last_record_offset = 0;
  {
    LogCursor scan(disk.log());
    LogRecord r;
    while (scan.Next(&r)) last_record_offset = scan.record_offset();
  }
  uint64_t last_size = full - last_record_offset;
  ASSERT_GT(last_size, 8u);
  for (uint64_t tear = 1; tear < last_size; tear += 5) {
    SimulatedDisk copy;
    ASSERT_TRUE(copy.log().Append(disk.log().Contents()).ok());
    copy.log().TearTail(tear);

    LogCursor cursor(copy.log());
    LogRecord rec;
    uint64_t cursor_count = 0;
    while (cursor.Next(&rec)) ++cursor_count;
    ASSERT_TRUE(cursor.status().ok());

    std::vector<LogRecord> records;
    bool torn;
    Lsn next;
    uint64_t valid_end;
    ASSERT_TRUE(LogManager::ReadStable(copy.log(), &records, &torn, &next,
                                       &valid_end)
                    .ok());

    EXPECT_EQ(cursor.torn(), torn) << "tear=" << tear;
    EXPECT_TRUE(cursor.torn());  // every tear size here cuts a record
    EXPECT_EQ(cursor_count, records.size()) << "tear=" << tear;
    EXPECT_EQ(cursor.next_lsn(), next) << "tear=" << tear;
    EXPECT_EQ(cursor.valid_end(), valid_end) << "tear=" << tear;
    EXPECT_LT(valid_end, copy.log().end_offset());
    EXPECT_EQ(cursor.next_lsn(), records.size() + 1) << "tear=" << tear;

    // A LogManager revived over the torn device must come to the same
    // conclusion: it resumes LSNs right after the last whole record.
    LogManager revived(&copy.log());
    EXPECT_EQ(revived.last_stable_lsn(), records.size());
    EXPECT_EQ(revived.Append(OpRecord(0, MakePhysicalWrite(2, "y"))),
              next);
  }
  EXPECT_EQ(full, disk.log().end_offset());  // original untouched
}

TEST(LogCursorTest, ResumeAfterTearTrim) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    for (int i = 0; i < 3; ++i) {
      log.Append(OpRecord(0, MakePhysicalWrite(1, "abcdefgh")));
    }
    ASSERT_TRUE(log.ForceAll().ok());
  }
  disk.log().TearTail(5);

  // Recovery's trim: drop exactly the torn bytes (end - valid_end), then
  // a revived manager appends cleanly and the log reads back whole.
  LogCursor scan(disk.log());
  LogRecord rec;
  while (scan.Next(&rec)) {
  }
  ASSERT_TRUE(scan.torn());
  disk.log().TearTail(disk.log().end_offset() - scan.valid_end());

  LogManager revived(&disk.log());
  EXPECT_EQ(revived.last_stable_lsn(), 2u);
  EXPECT_EQ(revived.Append(OpRecord(0, MakePhysicalWrite(1, "zz"))), 3u);
  ASSERT_TRUE(revived.ForceAll().ok());

  LogCursor reread(disk.log());
  std::vector<Lsn> lsns;
  while (reread.Next(&rec)) lsns.push_back(rec.lsn);
  EXPECT_FALSE(reread.torn());
  EXPECT_TRUE(reread.status().ok());
  EXPECT_EQ(lsns, (std::vector<Lsn>{1, 2, 3}));
}

TEST(LogCursorTest, RevivedManagerOffsetIndexSupportsTruncation) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    for (int i = 0; i < 4; ++i) {
      log.Append(OpRecord(0, MakePhysicalWrite(1, "x")));
      ASSERT_TRUE(log.ForceAll().ok());
    }
  }
  // The revived manager's constructor built its offset index through the
  // cursor; truncation through that index must drop exactly the records
  // before the cut.
  LogManager revived(&disk.log());
  revived.TruncateBefore(3);

  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(LogManager::ReadStable(disk.log(), &records, &torn, &next,
                                     &valid_end)
                  .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 3u);
  EXPECT_EQ(records[1].lsn, 4u);
  EXPECT_EQ(next, 5u);
}

TEST(LogCursorTest, SliceCursorTracksAbsoluteOffsets) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  for (int i = 0; i < 3; ++i) {
    log.Append(OpRecord(0, MakePhysicalWrite(1, "abc")));
  }
  ASSERT_TRUE(log.ForceAll().ok());

  // A slice cursor given the device's start offset reports the same
  // absolute offsets as the device cursor (media recovery walks the
  // archive slice this way).
  LogCursor dev_cursor(disk.log());
  LogCursor slice_cursor(disk.log().Contents(), disk.log().start_offset());
  LogRecord a, b;
  while (dev_cursor.Next(&a)) {
    ASSERT_TRUE(slice_cursor.Next(&b));
    EXPECT_EQ(a.lsn, b.lsn);
    EXPECT_EQ(dev_cursor.record_offset(), slice_cursor.record_offset());
  }
  EXPECT_FALSE(slice_cursor.Next(&b));
  EXPECT_EQ(dev_cursor.valid_end(), slice_cursor.valid_end());
  EXPECT_EQ(dev_cursor.next_lsn(), slice_cursor.next_lsn());
}

// --- Tail-follow semantics -------------------------------------------
//
// The log shipper tails the archive with a fresh slice cursor per poll,
// resuming at the previous cursor's valid_end(). These tests pin the
// contract that makes that loop correct: resuming at valid_end sees
// exactly the records that arrived since, truncation never perturbs the
// archive walk, and a torn tail stops the cursor at an offset from which
// the healed log re-serves the same LSN.

TEST(LogCursorTest, TailFollowAcrossConcurrentAppends) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  log.Append(OpRecord(0, MakePhysicalWrite(1, "first")));
  ASSERT_TRUE(log.ForceAll().ok());

  // First tail pass consumes everything stable so far.
  Slice archive = disk.log().ArchiveContents();
  LogCursor first(archive, 0);
  LogRecord rec;
  std::vector<Lsn> seen;
  while (first.Next(&rec)) seen.push_back(rec.lsn);
  ASSERT_EQ(seen, (std::vector<Lsn>{1}));
  const uint64_t resume = first.valid_end();

  // More records become stable between polls (interleaved with a
  // truncation-irrelevant re-read of the archive, as the shipper does).
  for (int i = 0; i < 3; ++i) {
    log.Append(OpRecord(0, MakePhysicalWrite(2, "more-bytes")));
    ASSERT_TRUE(log.ForceAll().ok());
  }

  // The next pass resumes at valid_end and sees exactly the new records:
  // no replays, no gaps.
  archive = disk.log().ArchiveContents();
  ASSERT_LE(resume, archive.size());
  LogCursor second(Slice(archive.data() + resume, archive.size() - resume),
                   resume);
  seen.clear();
  while (second.Next(&rec)) seen.push_back(rec.lsn);
  EXPECT_EQ(seen, (std::vector<Lsn>{2, 3, 4}));
  EXPECT_FALSE(second.torn());
  EXPECT_EQ(second.valid_end(), archive.size());
}

TEST(LogCursorTest, TailFollowSurvivesTruncateBefore) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  for (int i = 0; i < 4; ++i) {
    log.Append(OpRecord(0, MakePhysicalWrite(1, "abcdefgh")));
    ASSERT_TRUE(log.ForceAll().ok());
  }
  Slice archive = disk.log().ArchiveContents();
  LogCursor before(archive, 0);
  LogRecord rec;
  uint64_t count = 0;
  while (before.Next(&rec)) ++count;
  ASSERT_EQ(count, 4u);
  const uint64_t resume = before.valid_end();

  // A checkpoint truncates the live log; the archive — and therefore a
  // tailing cursor's resume offset — is unaffected, while a device
  // cursor now starts mid-history.
  log.TruncateBefore(3);
  log.Append(OpRecord(0, MakePhysicalWrite(2, "post-truncate")));
  ASSERT_TRUE(log.ForceAll().ok());

  archive = disk.log().ArchiveContents();
  LogCursor after(Slice(archive.data() + resume, archive.size() - resume),
                  resume);
  std::vector<Lsn> tail;
  while (after.Next(&rec)) tail.push_back(rec.lsn);
  EXPECT_EQ(tail, (std::vector<Lsn>{5}));

  LogCursor device(disk.log());
  std::vector<Lsn> live;
  while (device.Next(&rec)) live.push_back(rec.lsn);
  EXPECT_EQ(live, (std::vector<Lsn>{3, 4, 5}));
  EXPECT_EQ(device.next_lsn(), after.next_lsn());
}

TEST(LogCursorTest, TornTailStopsAndResumesAtSameLsn) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    log.Append(OpRecord(0, MakePhysicalWrite(1, "whole-record")));
    ASSERT_TRUE(log.ForceAll().ok());
    log.Append(OpRecord(0, MakePhysicalWrite(1, "doomed-record")));
    ASSERT_TRUE(log.ForceAll().ok());
  }
  disk.log().TearTail(4);  // cut into the final record

  // The tailing cursor stops at the tear; only the whole record is
  // trusted, and valid_end marks where trust ends.
  Slice archive = disk.log().ArchiveContents();
  LogCursor torn_cursor(archive, 0);
  LogRecord rec;
  std::vector<Lsn> seen;
  while (torn_cursor.Next(&rec)) seen.push_back(rec.lsn);
  ASSERT_TRUE(torn_cursor.torn());
  ASSERT_EQ(seen, (std::vector<Lsn>{1}));
  const uint64_t resume = torn_cursor.valid_end();
  ASSERT_LT(resume, archive.size());

  // Recovery heals the device (trims the torn bytes) and execution
  // resumes: the next record takes the SAME LSN the torn one had.
  disk.log().TearTail(disk.log().end_offset() - resume);
  LogManager revived(&disk.log());
  EXPECT_EQ(revived.Append(OpRecord(0, MakePhysicalWrite(1, "retried"))),
            2u);
  ASSERT_TRUE(revived.ForceAll().ok());

  // Resuming the tail at valid_end yields lsn 2 exactly once — the
  // shipper neither skips nor duplicates the re-forced record.
  archive = disk.log().ArchiveContents();
  LogCursor resumed(Slice(archive.data() + resume, archive.size() - resume),
                    resume);
  seen.clear();
  while (resumed.Next(&rec)) seen.push_back(rec.lsn);
  EXPECT_FALSE(resumed.torn());
  EXPECT_EQ(seen, (std::vector<Lsn>{2}));
}

}  // namespace
}  // namespace loglog
