#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/recovery_engine.h"
#include "logstore/compactor.h"
#include "logstore/logstore.h"
#include "obs/metrics.h"
#include "ops/op_builder.h"
#include "ship/divergence_audit.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

// Directed tests for the log-as-database backend: the stable store never
// sees an object write; installation publishes LogIndex entries pointing
// at forced full-image records; reads fall through to the log (hot tier)
// or the cold archive; recovery rebuilds the index from the last
// kIndexCheckpoint plus install-evidenced full images; the compactor
// rewrites old live images forward so truncation reclaims real bytes.

ObjectValue Val(const std::string& s) {
  return ObjectValue(s.begin(), s.end());
}

EngineOptions LogStoreOpts() {
  EngineOptions opts;
  opts.backend = StorageBackend::kLogStore;
  opts.flush_policy = FlushPolicy::kNativeAtomic;
  opts.purge_threshold_ops = 0;  // tests purge/flush explicitly
  return opts;
}

TEST(LogStoreTest, StoreStaysEmptyAndReadsServeFromLog) {
  Counter* log_reads =
      MetricsRegistry::Global().GetCounter(metric::kLogstoreReadsLog);
  uint64_t reads_before = log_reads->value();

  SimulatedDisk disk;
  RecoveryEngine engine(LogStoreOpts(), &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "alpha")).ok());
  ASSERT_TRUE(engine.Execute(MakeCreate(2, "beta")).ok());
  ASSERT_TRUE(engine.Execute(MakePhysicalWrite(1, "alpha-v2")).ok());
  ASSERT_TRUE(engine.FlushAll().ok());

  // The defining property: installation happened, yet the store is empty.
  EXPECT_EQ(disk.store().object_count(), 0u);
  EXPECT_EQ(engine.cache().log_index().size(), 2u);

  // Cache-hit reads first, then evict everything and force the log path.
  ObjectValue v;
  ASSERT_TRUE(engine.Read(1, &v).ok());
  EXPECT_EQ(v, Val("alpha-v2"));
  engine.cache().EvictTo(0);
  ASSERT_TRUE(engine.Read(1, &v).ok());
  EXPECT_EQ(v, Val("alpha-v2"));
  ASSERT_TRUE(engine.Read(2, &v).ok());
  EXPECT_EQ(v, Val("beta"));
  EXPECT_GE(log_reads->value(), reads_before + 2);
  EXPECT_FALSE(engine.Exists(99));
}

TEST(LogStoreTest, RedoTestAlwaysIsForcedToVsi) {
  // kAlways redo consults the stable store's manifest, which kLogStore
  // never writes; the engine silently upgrades to the vSI test.
  EngineOptions opts = LogStoreOpts();
  opts.redo_test = RedoTestKind::kAlways;
  opts.log_installs = false;  // also forced: rebuild needs the evidence
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  EXPECT_EQ(engine.options().redo_test, RedoTestKind::kVsi);
  EXPECT_TRUE(engine.options().log_installs);
}

TEST(LogStoreTest, IndexRebuildAfterCrash) {
  SimulatedDisk disk;
  auto engine = std::make_unique<RecoveryEngine>(LogStoreOpts(), &disk);
  ASSERT_TRUE(engine->Execute(MakeCreate(1, "one")).ok());
  ASSERT_TRUE(engine->Execute(MakeCreate(2, "two")).ok());
  // A logical cross-object op: its record is NOT a full image, so
  // installation must inject a W_IP identity record before publishing.
  ASSERT_TRUE(engine->Execute(MakeCopy(/*y=*/3, /*x=*/1)).ok());
  ASSERT_TRUE(engine->FlushAll().ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  // Post-checkpoint tail: an update with install evidence, plus one the
  // crash will cut off (never forced — recovery must not see it).
  ASSERT_TRUE(engine->Execute(MakePhysicalWrite(2, "two-v2")).ok());
  ASSERT_TRUE(engine->FlushAll().ok());
  ASSERT_TRUE(engine->Execute(MakePhysicalWrite(1, "lost")).ok());

  engine.reset();  // crash: volatile index, cache and log buffer die
  engine = std::make_unique<RecoveryEngine>(LogStoreOpts(), &disk);
  ASSERT_TRUE(engine->Recover().ok());

  EXPECT_EQ(disk.store().object_count(), 0u);
  ObjectValue v;
  ASSERT_TRUE(engine->Read(1, &v).ok());
  EXPECT_EQ(v, Val("one"));
  ASSERT_TRUE(engine->Read(2, &v).ok());
  EXPECT_EQ(v, Val("two-v2"));
  ASSERT_TRUE(engine->Read(3, &v).ok());
  EXPECT_EQ(v, Val("one"));
  ASSERT_TRUE(engine->FlushAll().ok());
  EXPECT_EQ(engine->cache().log_index().size(), 3u);
}

TEST(LogStoreTest, DeleteRetiresIndexEntry) {
  SimulatedDisk disk;
  auto engine = std::make_unique<RecoveryEngine>(LogStoreOpts(), &disk);
  ASSERT_TRUE(engine->Execute(MakeCreate(7, "doomed")).ok());
  ASSERT_TRUE(engine->Execute(MakeCreate(8, "keeper")).ok());
  ASSERT_TRUE(engine->FlushAll().ok());
  ASSERT_TRUE(engine->Execute(MakeDelete(7)).ok());
  ASSERT_TRUE(engine->FlushAll().ok());

  EXPECT_FALSE(engine->Exists(7));
  IndexCheckpointEntry entry;
  EXPECT_FALSE(engine->cache().log_index().Lookup(7, &entry));
  EXPECT_TRUE(engine->cache().log_index().Lookup(8, &entry));

  engine.reset();
  engine = std::make_unique<RecoveryEngine>(LogStoreOpts(), &disk);
  ASSERT_TRUE(engine->Recover().ok());
  ASSERT_TRUE(engine->FlushAll().ok());
  EXPECT_FALSE(engine->Exists(7));
  ObjectValue v;
  ASSERT_TRUE(engine->Read(8, &v).ok());
  EXPECT_EQ(v, Val("keeper"));
}

TEST(LogStoreTest, ColdTierServesTruncatedImages) {
  Counter* cold_reads =
      MetricsRegistry::Global().GetCounter(metric::kLogstoreReadsCold);
  uint64_t cold_before = cold_reads->value();

  SimulatedDisk disk;
  RecoveryEngine engine(LogStoreOpts(), &disk);
  for (ObjectId id = 1; id <= 8; ++id) {
    ASSERT_TRUE(
        engine.Execute(MakeCreate(id, "value-" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(engine.FlushAll().ok());
  // The checkpoint truncates up to the checkpoint record itself — the
  // live images land below the horizon and spill to the cold tier (the
  // floor deliberately ignores LogIndex::MinLsn; see
  // CacheManager::Checkpoint).
  ASSERT_TRUE(engine.Checkpoint().ok());
  EXPECT_GT(disk.log().cold_tier().total_bytes(), 0u);
  EXPECT_GT(disk.log().reclaimed_bytes(), 0u);

  engine.cache().EvictTo(0);
  for (ObjectId id = 1; id <= 8; ++id) {
    ObjectValue v;
    ASSERT_TRUE(engine.Read(id, &v).ok()) << id;
    EXPECT_EQ(v, Val("value-" + std::to_string(id))) << id;
  }
  EXPECT_GE(cold_reads->value(), cold_before + 8);
}

TEST(LogStoreTest, CompactionMovesImagesForwardAndPreservesReads) {
  SimulatedDisk disk;
  EngineOptions opts = LogStoreOpts();
  opts.logstore.compact_batch_objects = 8;
  RecoveryEngine engine(opts, &disk);
  for (ObjectId id = 1; id <= 16; ++id) {
    ASSERT_TRUE(
        engine.Execute(MakeCreate(id, "img-" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(engine.FlushAll().ok());
  ASSERT_TRUE(engine.Checkpoint().ok());
  Lsn oldest_before = engine.cache().log_index().MinLsn();

  // Two passes move all 16 live images to the tail; each pass checkpoints
  // so truncation chases the rewritten minimum.
  ASSERT_TRUE(engine.Compact().ok());
  ASSERT_TRUE(engine.Compact().ok());
  ASSERT_NE(engine.compactor(), nullptr);
  EXPECT_EQ(engine.compactor()->stats().images_moved, 16u);
  EXPECT_GT(engine.compactor()->stats().bytes_moved, 0u);
  EXPECT_GT(engine.cache().log_index().MinLsn(), oldest_before);

  // Read equivalence after compaction, through a cold cache.
  engine.cache().EvictTo(0);
  for (ObjectId id = 1; id <= 16; ++id) {
    ObjectValue v;
    ASSERT_TRUE(engine.Read(id, &v).ok()) << id;
    EXPECT_EQ(v, Val("img-" + std::to_string(id))) << id;
  }
}

TEST(LogStoreTest, CrashAfterCompactionAuditsCleanly) {
  SimulatedDisk disk;
  EngineOptions opts = LogStoreOpts();
  opts.purge_threshold_ops = 6;  // install mid-stream, storm-style
  auto engine = std::make_unique<RecoveryEngine>(opts, &disk);
  for (ObjectId id = 1; id <= 10; ++id) {
    ASSERT_TRUE(
        engine->Execute(MakeCreate(id, "c-" + std::to_string(id))).ok());
  }
  ASSERT_TRUE(engine->Execute(MakeCopy(11, 1)).ok());
  ASSERT_TRUE(engine->Execute(MakeAppend(2, "-tail")).ok());
  ASSERT_TRUE(engine->FlushAll().ok());
  ASSERT_TRUE(engine->Checkpoint().ok());
  ASSERT_TRUE(engine->Compact().ok());
  // More work after the compaction pass, some installed, some not.
  ASSERT_TRUE(engine->Execute(MakePhysicalWrite(3, "late")).ok());
  ASSERT_TRUE(engine->FlushAll().ok());

  engine.reset();  // crash
  engine = std::make_unique<RecoveryEngine>(opts, &disk);
  ASSERT_TRUE(engine->Recover().ok());
  ASSERT_TRUE(engine->FlushAll().ok());

  // The divergence auditor replays the whole archive (cold + hot) and
  // diffs the engine's read path — values, vSIs and the live id set.
  DivergenceAuditor auditor;
  ASSERT_TRUE(
      auditor.Advance(disk.log().ArchiveContents(), kMaxLsn - 1).ok());
  DivergenceReport report;
  Status st = auditor.CompareEngineReads(engine.get(), &report);
  EXPECT_TRUE(st.ok()) << report.ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.objects_compared, report.objects_expected);
}

TEST(LogStoreTest, CompactionCadenceRunsFromMaintenance) {
  SimulatedDisk disk;
  EngineOptions opts = LogStoreOpts();
  opts.purge_threshold_ops = 8;
  opts.logstore.compact_interval_ops = 16;
  opts.logstore.compact_batch_objects = 4;
  RecoveryEngine engine(opts, &disk);
  for (int round = 0; round < 8; ++round) {
    for (ObjectId id = 1; id <= 12; ++id) {
      ASSERT_TRUE(engine
                      .Execute(MakePhysicalWrite(
                          id, "r" + std::to_string(round) + "-" +
                                  std::to_string(id)))
                      .ok());
    }
  }
  ASSERT_NE(engine.compactor(), nullptr);
  EXPECT_GT(engine.compactor()->stats().runs, 0u);
  for (ObjectId id = 1; id <= 12; ++id) {
    ObjectValue v;
    ASSERT_TRUE(engine.Read(id, &v).ok());
    EXPECT_EQ(v, Val("r7-" + std::to_string(id)));
  }
}

TEST(LogStoreTest, ColdRetentionGcReclaimsDeadSegments) {
  // With cold_retention_full off, each checkpoint drops cold segments
  // wholly below the oldest live index offset. Compaction is what moves
  // that bound: the once-written objects get rewritten forward, the
  // archive prefix behind them becomes droppable, and the total device
  // footprint stays a small multiple of the live bytes instead of the
  // whole history.
  SimulatedDisk disk;
  disk.log().set_cold_segment_target(1024);
  EngineOptions opts = LogStoreOpts();
  opts.logstore.cold_retention_full = false;
  opts.logstore.compact_batch_objects = 16;
  RecoveryEngine engine(opts, &disk);
  for (ObjectId id = 1; id <= 8; ++id) {
    ASSERT_TRUE(
        engine.Execute(MakeCreate(id, std::string(64, static_cast<char>('a' + id)))).ok());
  }
  for (int round = 0; round < 20; ++round) {
    // Two hot objects churn; six stay cold until compaction moves them.
    ASSERT_TRUE(
        engine.Execute(MakePhysicalWrite(1, std::string(64, 'x'))).ok());
    ASSERT_TRUE(
        engine.Execute(MakePhysicalWrite(2, std::string(64, 'y'))).ok());
    ASSERT_TRUE(engine.FlushAll().ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  uint64_t pinned = disk.log().cold_tier().total_bytes();
  EXPECT_GT(pinned, 0u);  // the six cold live objects pin the archive

  uint64_t reclaimed_before = disk.log().reclaimed_bytes();
  ASSERT_TRUE(engine.Compact().ok());  // moves all 8 forward + checkpoints
  EXPECT_LT(disk.log().cold_tier().total_bytes(), pinned);
  EXPECT_GT(disk.log().reclaimed_bytes(), reclaimed_before);

  // Reads survive the GC: everything live is at or above the new bound.
  engine.cache().EvictTo(0);
  ObjectValue v;
  for (ObjectId id = 3; id <= 8; ++id) {
    ASSERT_TRUE(engine.Read(id, &v).ok()) << id;
    EXPECT_EQ(v, Val(std::string(64, static_cast<char>('a' + id)))) << id;
  }
}

TEST(LogStoreTest, FullImagePredicateMatchesBuilders) {
  EXPECT_TRUE(IsFullImageOp(MakeCreate(1, "x")));
  EXPECT_TRUE(IsFullImageOp(MakePhysicalWrite(1, "x")));
  EXPECT_TRUE(IsFullImageOp(MakeIdentityWrite(1, "x")));
  EXPECT_TRUE(IsFullImageOp(MakeDelete(1)));
  EXPECT_FALSE(IsFullImageOp(MakeDelta(1, 0, "x")));
  EXPECT_FALSE(IsFullImageOp(MakeAppend(1, "x")));
  EXPECT_FALSE(IsFullImageOp(MakeCopy(2, 1)));
  EXPECT_FALSE(IsFullImageOp(MakeSort(2, 1, 8)));
}

}  // namespace
}  // namespace loglog
