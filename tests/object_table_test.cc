#include <gtest/gtest.h>

#include "cache/object_table.h"

namespace loglog {
namespace {

TEST(ObjectTableTest, FindGetOrCreateErase) {
  ObjectTable table;
  EXPECT_EQ(table.Find(1), nullptr);
  CachedObject& obj = table.GetOrCreate(1);
  obj.value = {1, 2, 3};
  obj.vsi = 7;
  ASSERT_NE(table.Find(1), nullptr);
  EXPECT_EQ(table.Find(1)->vsi, 7u);
  EXPECT_EQ(table.size(), 1u);
  table.Erase(1);
  EXPECT_EQ(table.Find(1), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(ObjectTableTest, DirtyCountAndSnapshot) {
  ObjectTable table;
  CachedObject& a = table.GetOrCreate(1);
  a.dirty = true;
  a.rsi = 5;
  CachedObject& b = table.GetOrCreate(2);
  b.dirty = false;
  CachedObject& c = table.GetOrCreate(3);
  c.dirty = true;
  c.rsi = 9;
  c.exists = false;  // uninstalled delete: dead in the snapshot

  EXPECT_EQ(table.dirty_count(), 2u);
  std::vector<DotEntry> dot = table.DirtySnapshot();
  ASSERT_EQ(dot.size(), 2u);
  bool saw_dead = false;
  for (const DotEntry& e : dot) {
    if (e.id == 3) {
      EXPECT_TRUE(e.dead);
      EXPECT_EQ(e.rsi, 9u);
      saw_dead = true;
    } else {
      EXPECT_EQ(e.id, 1u);
      EXPECT_FALSE(e.dead);
    }
  }
  EXPECT_TRUE(saw_dead);
}

TEST(ObjectTableTest, OldestCleanPrefersLruAndSkipsDirty) {
  ObjectTable table;
  CachedObject& a = table.GetOrCreate(1);
  a.last_access = 10;
  CachedObject& b = table.GetOrCreate(2);
  b.last_access = 5;  // older
  CachedObject& c = table.GetOrCreate(3);
  c.last_access = 1;  // oldest but dirty
  c.dirty = true;
  EXPECT_EQ(table.OldestClean(), 2u);
  table.Erase(2);
  EXPECT_EQ(table.OldestClean(), 1u);
  table.Erase(1);
  EXPECT_EQ(table.OldestClean(), kInvalidObjectId);  // only dirty left
}

TEST(ObjectTableTest, ForEachVisitsAll) {
  ObjectTable table;
  for (ObjectId id = 1; id <= 5; ++id) table.GetOrCreate(id);
  size_t count = 0;
  table.ForEach([&](ObjectId, CachedObject&) { ++count; });
  EXPECT_EQ(count, 5u);
}

}  // namespace
}  // namespace loglog
