// Tests for the observability layer: exact histograms, the metrics
// registry (including concurrent recording — run under LOGLOG_TSAN),
// snapshot deltas, the trace recorder's Chrome JSON export, and the
// end-to-end recovery timeline the instrumented engine produces.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/recovery_engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

TEST(HistogramTest, QuantilesExact) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Percentile(q) = smallest v with at least q*n samples <= v; with the
  // exact 1..100 domain the quantiles are the obvious ranks.
  EXPECT_EQ(h.Percentile(0.50), 50u);
  EXPECT_EQ(h.Percentile(0.90), 90u);
  EXPECT_EQ(h.Percentile(0.99), 99u);
  EXPECT_EQ(h.Percentile(1.00), 100u);
  EXPECT_EQ(h.Percentile(0.0), 1u);
}

TEST(HistogramTest, QuantilesSkewedAndWeighted) {
  Histogram h;
  h.Add(1, 999);  // weighted insert: 999 samples of value 1
  h.Add(1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.CountOf(1), 999u);
  EXPECT_EQ(h.Percentile(0.50), 1u);
  EXPECT_EQ(h.Percentile(0.999), 1u);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, EmptyAndClear) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Add(7);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_TRUE(h.counts().empty());
}

TEST(HistogramTest, MergeAndJson) {
  Histogram a, b;
  a.Add(1);
  a.Add(2);
  b.Add(2);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.CountOf(2), 2u);
  EXPECT_EQ(a.max(), 3u);
  EXPECT_TRUE(JsonSyntaxCheck(Slice(a.ToJson())).ok());
  EXPECT_FALSE(a.ToString().empty());
}

TEST(MetricsRegistryTest, StablePointersAndFullNames) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x.count");
  Counter* c2 = reg.GetCounter("x.count");
  EXPECT_EQ(c1, c2);  // same (name, labels) -> same instance

  // Label keys are sorted into the full name, so insertion order of the
  // label vector does not fork instances.
  Counter* l1 = reg.GetCounter("x.count", {{"b", "2"}, {"a", "1"}});
  Counter* l2 = reg.GetCounter("x.count", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(l1, l2);
  EXPECT_NE(l1, c1);
  EXPECT_EQ(MetricsRegistry::FullName("x.count", {{"b", "2"}, {"a", "1"}}),
            "x.count{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::FullName("x.count", {}), "x.count");

  c1->Inc();
  c1->Inc(4);
  l1->Inc();
  reg.GetGauge("x.level")->Set(-3);
  reg.GetHistogram("x.dist")->Observe(10);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("x.count"), 5u);
  EXPECT_EQ(snap.counters.at("x.count{a=1,b=2}"), 1u);
  EXPECT_EQ(snap.gauges.at("x.level"), -3);
  EXPECT_EQ(snap.histograms.at("x.dist").count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotDeltaSubtractsFlowsKeepsLevels) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("flow");
  Gauge* g = reg.GetGauge("level");
  HistogramMetric* h = reg.GetHistogram("dist");
  c->Inc(10);
  g->Set(5);
  h->Observe(1);
  h->Observe(1);
  MetricsSnapshot before = reg.Snapshot();

  c->Inc(7);
  g->Set(9);
  h->Observe(1);
  h->Observe(3);
  Counter* late = reg.GetCounter("flow.late");  // absent from `before`
  late->Inc(2);

  MetricsSnapshot delta = reg.Snapshot().Delta(before);
  EXPECT_EQ(delta.counters.at("flow"), 7u);
  EXPECT_EQ(delta.counters.at("flow.late"), 2u);  // counts from zero
  EXPECT_EQ(delta.gauges.at("level"), 9);         // level, not flow
  // The delta histogram holds only the between-snapshot samples.
  EXPECT_EQ(delta.histograms.at("dist").count(), 2u);
  EXPECT_EQ(delta.histograms.at("dist").CountOf(1), 1u);
  EXPECT_EQ(delta.histograms.at("dist").CountOf(3), 1u);

  EXPECT_TRUE(JsonSyntaxCheck(Slice(delta.ToJson())).ok());
  EXPECT_FALSE(delta.ToString().empty());
}

TEST(MetricsRegistryTest, ResetAllKeepsInstances) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  c->Inc(3);
  reg.GetHistogram("h")->Observe(1);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);  // outstanding pointer still valid
  EXPECT_EQ(reg.Snapshot().histograms.at("h").count(), 0u);
  c->Inc();
  EXPECT_EQ(reg.Snapshot().counters.at("c"), 1u);
}

// Concurrent hammering of one registry: registration races (same and
// distinct names), counter increments, histogram observes and snapshots
// all interleave. Correctness here is exact final counts; the data-race
// check is TSan's job (build with -DLOGLOG_TSAN=ON).
TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kIters = 2000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg, t] {
      Counter* shared = reg.GetCounter("hammer.shared");
      Counter* mine =
          reg.GetCounter("hammer.per_thread", {{"t", std::to_string(t)}});
      HistogramMetric* hist = reg.GetHistogram("hammer.dist");
      Gauge* gauge = reg.GetGauge("hammer.level");
      for (uint64_t i = 0; i < kIters; ++i) {
        shared->Inc();
        mine->Inc();
        hist->Observe(i % 16);
        gauge->Add(1);
        if (i % 512 == 0) {
          MetricsSnapshot s = reg.Snapshot();  // concurrent reader
          EXPECT_LE(s.counters.at("hammer.shared"), kThreads * kIters);
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.counters.at("hammer.shared"), kThreads * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(s.counters.at("hammer.per_thread{t=" + std::to_string(t) + "}"),
              kIters);
  }
  EXPECT_EQ(s.histograms.at("hammer.dist").count(), kThreads * kIters);
  EXPECT_EQ(s.gauges.at("hammer.level"),
            static_cast<int64_t>(kThreads * kIters));
}

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder rec;
  { TraceSpan span("ignored", "test", {}, &rec); }
  rec.AddInstant("also.ignored", "test");
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorderTest, SpanCapturesEnabledAtConstruction) {
  TraceRecorder rec;
  rec.Enable();
  {
    TraceSpan span("survives.disable", "test", {}, &rec);
    rec.Disable();  // flipped mid-span: the span still records
  }
  {
    TraceSpan span("never.recorded", "test", {}, &rec);
    rec.Enable();  // began while off: stays unrecorded
  }
  rec.Disable();
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "survives.disable");
}

TEST(TraceRecorderTest, NestedSpansInstantsAndArgs) {
  TraceRecorder rec;
  rec.Enable();
  {
    TraceSpan outer("outer", "test", {{"fixed", "yes"}}, &rec);
    rec.AddInstant("tick", "test", {{"k", "v"}});
    {
      TraceSpan inner("inner", "test", {}, &rec);
      inner.AddArg("late", uint64_t{42});
    }
    outer.End();
    outer.End();  // idempotent
  }
  rec.Disable();
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 3u);  // double End() did not duplicate

  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  const TraceEvent* tick = nullptr;
  for (const TraceEvent& ev : events) {
    if (ev.name == "outer") outer = &ev;
    if (ev.name == "inner") inner = &ev;
    if (ev.name == "tick") tick = &ev;
  }
  ASSERT_TRUE(outer != nullptr && inner != nullptr && tick != nullptr);
  EXPECT_EQ(tick->phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(outer->phase, TraceEvent::Phase::kComplete);
  // inner nests inside outer on the same thread.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us);
  ASSERT_EQ(inner->args.size(), 1u);
  EXPECT_EQ(inner->args[0].first, "late");
  EXPECT_EQ(inner->args[0].second, "42");
  EXPECT_TRUE(ValidateSpanNesting(events).ok());
}

TEST(TraceRecorderTest, DenseThreadIds) {
  TraceRecorder rec;
  rec.Enable();
  rec.AddInstant("main", "test");
  std::thread([&rec] { rec.AddInstant("worker", "test"); }).join();
  rec.Disable();
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, 0u);  // first thread seen is tid 0
  EXPECT_EQ(events[1].tid, 1u);
}

TEST(TraceRecorderTest, ChromeJsonStructure) {
  TraceRecorder rec;
  rec.Enable();
  {
    TraceSpan span("phase \"one\"", "cat", {{"key", "va\\lue"}}, &rec);
  }
  rec.AddInstant("marker", "cat");
  rec.Disable();

  std::string doc = rec.ToChromeJson();
  EXPECT_TRUE(JsonSyntaxCheck(Slice(doc)).ok()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(doc.find("\"pid\""), std::string::npos);
  EXPECT_NE(doc.find("\"tid\""), std::string::npos);
  // The quote and backslash in name/args survived escaping (the syntax
  // check above would also fail on broken escapes).
  EXPECT_NE(doc.find("phase \\\"one\\\""), std::string::npos);
}

TEST(ValidateSpanNestingTest, RejectsPartialOverlap) {
  std::vector<TraceEvent> events(2);
  events[0].name = "a";
  events[0].ts_us = 0;
  events[0].dur_us = 10;
  events[1].name = "b";
  events[1].ts_us = 5;
  events[1].dur_us = 10;  // [5,15) straddles a's end: not nested
  EXPECT_TRUE(ValidateSpanNesting(events).IsCorruption());

  events[1].dur_us = 3;  // [5,8) nests inside [0,10)
  EXPECT_TRUE(ValidateSpanNesting(events).ok());

  events[1].ts_us = 20;
  events[1].dur_us = 100;  // disjoint is fine too
  EXPECT_TRUE(ValidateSpanNesting(events).ok());

  // Partial overlap on *different* threads is fine — nesting is per-tid.
  events[1].ts_us = 5;
  events[1].dur_us = 10;
  events[1].tid = 1;
  EXPECT_TRUE(ValidateSpanNesting(events).ok());
}

/// Runs a crash-recovery cycle with the global tracer on and returns the
/// recovery timeline: workload -> force -> drop the engine (all volatile
/// state dies) -> recover over the surviving disk with `threads` workers.
std::vector<TraceEvent> TracedRecovery(int threads) {
  SimulatedDisk disk;
  EngineOptions eo;
  eo.purge_threshold_ops = 10;
  eo.recovery.redo_threads = threads;
  {
    RecoveryEngine engine(eo, &disk);
    MixedWorkloadOptions wopts;
    wopts.seed = 99;
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      EXPECT_TRUE(engine.Execute(op).ok());
    }
    for (int i = 0; i < 300; ++i) {
      Status st = engine.Execute(workload.Next());
      EXPECT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
    }
    EXPECT_TRUE(engine.log().ForceAll().ok());
  }  // crash

  TraceRecorder& tracer = TraceRecorder::Global();
  tracer.Clear();
  tracer.Enable();
  RecoveryEngine engine(eo, &disk);
  RecoveryStats rstats;
  EXPECT_TRUE(engine.Recover(&rstats).ok());
  tracer.Disable();
  EXPECT_GT(rstats.ops_redone, 0u);
  return tracer.Events();
}

uint64_t CountByName(const std::vector<TraceEvent>& events,
                     std::string_view name) {
  uint64_t n = 0;
  for (const TraceEvent& ev : events) n += ev.name == name;
  return n;
}

TEST(RecoveryTimelineTest, ParallelRecoveryProducesNestedSpans) {
  std::vector<TraceEvent> events = TracedRecovery(/*threads=*/4);
  EXPECT_TRUE(ValidateSpanNesting(events).ok());

  ASSERT_EQ(CountByName(events, "recovery.run"), 1u);
  EXPECT_EQ(CountByName(events, "recovery.log_scan"), 1u);
  EXPECT_EQ(CountByName(events, "recovery.analysis"), 1u);
  EXPECT_EQ(CountByName(events, "recovery.redo"), 1u);
  EXPECT_EQ(CountByName(events, "redo.partition"), 1u);
  EXPECT_EQ(CountByName(events, "redo.apply"), 1u);
  EXPECT_GE(CountByName(events, "redo.worker"), 1u);
  EXPECT_GE(CountByName(events, "redo.component"), 1u);

  // The phase spans nest inside recovery.run on the coordinating thread.
  const TraceEvent* run = nullptr;
  for (const TraceEvent& ev : events) {
    if (ev.name == "recovery.run") run = &ev;
  }
  ASSERT_NE(run, nullptr);
  uint64_t components = 0;
  for (const TraceEvent& ev : events) {
    if (ev.name == "recovery.log_scan" || ev.name == "recovery.analysis" ||
        ev.name == "recovery.redo") {
      EXPECT_EQ(ev.tid, run->tid) << ev.name;
      EXPECT_GE(ev.ts_us, run->ts_us) << ev.name;
      EXPECT_LE(ev.ts_us + ev.dur_us, run->ts_us + run->dur_us) << ev.name;
    }
    if (ev.name == "redo.component") {
      ++components;
      // Every component span nests inside some worker span.
      bool inside_worker = false;
      for (const TraceEvent& w : events) {
        if (w.name == "redo.worker" && w.tid == ev.tid &&
            w.ts_us <= ev.ts_us &&
            ev.ts_us + ev.dur_us <= w.ts_us + w.dur_us) {
          inside_worker = true;
        }
      }
      EXPECT_TRUE(inside_worker);
    }
  }
  EXPECT_GT(components, 0u);

  // The exported document is valid, loadable Chrome trace JSON.
  std::string doc = TraceRecorder::Global().ToChromeJson();
  EXPECT_TRUE(JsonSyntaxCheck(Slice(doc)).ok());
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("redo.worker"), std::string::npos);
  EXPECT_NE(doc.find("redo.component"), std::string::npos);
}

TEST(RecoveryTimelineTest, SerialRecoveryTracesOnOneThread) {
  std::vector<TraceEvent> events = TracedRecovery(/*threads=*/1);
  EXPECT_TRUE(ValidateSpanNesting(events).ok());
  EXPECT_EQ(CountByName(events, "recovery.run"), 1u);
  EXPECT_EQ(CountByName(events, "recovery.redo"), 1u);
  // Serial redo runs inline in the driver — no worker pool, no worker or
  // component spans, and the redo span says so.
  EXPECT_EQ(CountByName(events, "redo.worker"), 0u);
  for (const TraceEvent& ev : events) {
    if (ev.name != "recovery.redo") continue;
    bool found = false;
    for (const auto& [k, v] : ev.args) {
      if (k == "mode") {
        EXPECT_EQ(v, "serial");
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RecoveryTimelineTest, RecoveryUpdatesGlobalMetrics) {
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  std::vector<TraceEvent> events = TracedRecovery(/*threads=*/2);
  MetricsSnapshot delta = MetricsRegistry::Global().Snapshot().Delta(before);
  EXPECT_GE(delta.counters.at(std::string(metric::kRecoveryRuns)), 1u);
  EXPECT_GT(delta.counters.at(std::string(metric::kRecoveryOpsRedone)), 0u);
  EXPECT_GE(
      delta.histograms.at(std::string(metric::kRecoveryDurationUs)).count(),
      1u);
  EXPECT_TRUE(JsonSyntaxCheck(Slice(delta.ToJson())).ok());
  EXPECT_FALSE(events.empty());
}

}  // namespace
}  // namespace loglog
