#include <gtest/gtest.h>

#include "common/random.h"
#include "ops/function_registry.h"
#include "ops/op_builder.h"
#include "ops/operation.h"

namespace loglog {
namespace {

std::vector<ObjectValue> Apply(const OperationDesc& op,
                               std::vector<ObjectValue> reads,
                               std::vector<ObjectValue> writes) {
  Status st = FunctionRegistry::Global().Apply(op, reads, &writes);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return writes;
}

ObjectValue Bytes(std::initializer_list<uint8_t> b) { return ObjectValue(b); }

TEST(OperationTest, ExposedAndBlindPartition) {
  OperationDesc op = MakeAppRead(1, 2);  // reads {1,2}, writes {1}
  EXPECT_EQ(op.Exposed(), (std::vector<ObjectId>{1}));
  EXPECT_TRUE(op.NotExposed().empty());

  OperationDesc wl = MakeAppWrite(1, 2, 16, 7);  // reads {1}, writes {2}
  EXPECT_TRUE(wl.Exposed().empty());
  EXPECT_EQ(wl.NotExposed(), (std::vector<ObjectId>{2}));
}

TEST(OperationTest, EncodeDecodeRoundTrip) {
  for (const OperationDesc& op :
       {MakePhysicalWrite(5, "payload"), MakeCreate(6, "init"),
        MakeDelete(7), MakeDelta(8, 3, "xy"), MakeCopy(9, 10),
        MakeSort(11, 12, 16), MakeAppExecute(13, 99), MakeAppRead(14, 15),
        MakeAppWrite(16, 17, 128, 3), MakeIdentityWrite(18, "val"),
        MakeXorMerge(19, {20, 21}),
        MakeHashCombine(22, {23, 24}, 64, 5)}) {
    std::vector<uint8_t> buf;
    op.EncodeTo(&buf);
    EXPECT_EQ(buf.size(), op.EncodedSize());
    Slice s(buf);
    OperationDesc out;
    ASSERT_TRUE(OperationDesc::DecodeFrom(&s, &out).ok());
    EXPECT_TRUE(out == op) << op.DebugString();
    EXPECT_TRUE(s.empty());
  }
}

TEST(OperationTest, ValidateRejectsMalformed) {
  OperationDesc empty;
  empty.writes.clear();
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());

  OperationDesc dup = MakePhysicalWrite(1, "x");
  dup.writes = {1, 1};
  EXPECT_TRUE(dup.Validate().IsInvalidArgument());

  OperationDesc phys_reading = MakePhysicalWrite(1, "x");
  phys_reading.reads = {2};
  EXPECT_TRUE(phys_reading.Validate().IsInvalidArgument());

  OperationDesc bad_physio = MakeDelta(1, 0, "x");
  bad_physio.reads = {2};
  EXPECT_TRUE(bad_physio.Validate().IsInvalidArgument());

  EXPECT_TRUE(MakeAppRead(1, 2).Validate().ok());
}

TEST(OperationTest, LogicalLoggingCostIsSizeIndependent) {
  // Figure 1's economics: a logical copy logs identifiers only, so its
  // record size is independent of the object size, while the physical
  // write's record carries the value.
  OperationDesc copy = MakeCopy(1, 2);
  EXPECT_LT(copy.EncodedSize(), 24u);
  std::string big(1 << 16, 'x');
  OperationDesc phys = MakePhysicalWrite(1, big);
  EXPECT_GT(phys.EncodedSize(), big.size());
}

TEST(TransformTest, SetValueAndIdentity) {
  auto out = Apply(MakePhysicalWrite(1, "abc"), {}, {{}});
  EXPECT_EQ(out[0], ObjectValue({'a', 'b', 'c'}));
  auto id = Apply(MakeIdentityWrite(1, "abc"), {}, {Bytes({1, 2})});
  EXPECT_EQ(id[0], ObjectValue({'a', 'b', 'c'}));
}

TEST(TransformTest, ApplyDeltaSplicesAndExtends) {
  // Physiological ops read their own object: read value == write value.
  auto out = Apply(MakeDelta(1, 1, "ZZ"), {Bytes({1, 2, 3, 4})},
                   {Bytes({1, 2, 3, 4})});
  EXPECT_EQ(out[0], ObjectValue({1, 'Z', 'Z', 4}));
  // Extends when the delta reaches past the end.
  auto ext = Apply(MakeDelta(1, 3, "AB"), {Bytes({1, 2})}, {Bytes({1, 2})});
  EXPECT_EQ(ext[0].size(), 5u);
  EXPECT_EQ(ext[0][3], 'A');
}

TEST(TransformTest, AppendConcatenates) {
  auto out =
      Apply(MakeAppend(1, "cd"), {Bytes({'a', 'b'})}, {Bytes({'a', 'b'})});
  EXPECT_EQ(out[0], ObjectValue({'a', 'b', 'c', 'd'}));
}

TEST(TransformTest, CopyTakesReadValue) {
  auto out = Apply(MakeCopy(1, 2), {Bytes({9, 8, 7})}, {{}});
  EXPECT_EQ(out[0], Bytes({9, 8, 7}));
}

TEST(TransformTest, SortRecordsSortsFixedRecords) {
  // Three 2-byte records: (3,0) (1,1) (2,2) -> (1,1) (2,2) (3,0).
  auto out = Apply(MakeSort(1, 2, 2), {Bytes({3, 0, 1, 1, 2, 2})}, {{}});
  EXPECT_EQ(out[0], Bytes({1, 1, 2, 2, 3, 0}));
  // Misaligned input fails.
  OperationDesc bad = MakeSort(1, 2, 4);
  std::vector<ObjectValue> writes{{}};
  std::vector<ObjectValue> reads{Bytes({1, 2, 3})};
  EXPECT_FALSE(FunctionRegistry::Global().Apply(bad, reads, &writes).ok());
}

TEST(TransformTest, AppOpsAreDeterministic) {
  ObjectValue a = Random(1).Bytes(32);
  ObjectValue x = Random(2).Bytes(64);
  auto r1 = Apply(MakeAppRead(1, 2), {a, x}, {a});
  auto r2 = Apply(MakeAppRead(1, 2), {a, x}, {a});
  EXPECT_EQ(r1[0], r2[0]);
  EXPECT_NE(r1[0], a);  // state evolved

  auto e1 = Apply(MakeAppExecute(1, 7), {a}, {a});
  auto e2 = Apply(MakeAppExecute(1, 7), {a}, {a});
  EXPECT_EQ(e1[0], e2[0]);
  EXPECT_NE(e1[0], Apply(MakeAppExecute(1, 8), {a}, {a})[0]);

  auto w1 = Apply(MakeAppWrite(1, 2, 48, 5), {a}, {{}});
  EXPECT_EQ(w1[0].size(), 48u);
  EXPECT_EQ(w1[0], Apply(MakeAppWrite(1, 2, 48, 5), {a}, {{}})[0]);
  // Output depends on the application state.
  EXPECT_NE(w1[0], Apply(MakeAppWrite(1, 2, 48, 5), {e1[0]}, {{}})[0]);
}

TEST(TransformTest, AppWriteIgnoresTargetOldValue) {
  // W_L(A,X) must be a blind write: X's new value cannot depend on X's
  // old value, or X would be exposed.
  ObjectValue a = Random(3).Bytes(16);
  auto w1 = Apply(MakeAppWrite(1, 2, 32, 9), {a}, {{}});
  auto w2 = Apply(MakeAppWrite(1, 2, 32, 9), {a}, {Random(4).Bytes(32)});
  EXPECT_EQ(w1[0], w2[0]);
}

TEST(TransformTest, XorMergeAndHashCombine) {
  auto x = Apply(MakeXorMerge(1, {2, 3}),
                 {Bytes({0xF0, 0x0F}), Bytes({0x0F})}, {{}});
  EXPECT_EQ(x[0], Bytes({0xFF, 0x0F}));

  auto h1 = Apply(MakeHashCombine(1, {2, 3}, 24, 11),
                  {Bytes({1}), Bytes({2})}, {{}});
  auto h2 = Apply(MakeHashCombine(1, {2, 3}, 24, 11),
                  {Bytes({1}), Bytes({2})}, {{}});
  EXPECT_EQ(h1[0], h2[0]);
  EXPECT_EQ(h1[0].size(), 24u);
}

TEST(FunctionRegistryTest, UnknownFunctionFails) {
  OperationDesc op = MakePhysicalWrite(1, "x");
  op.func = 9999;
  std::vector<ObjectValue> writes{{}};
  EXPECT_TRUE(
      FunctionRegistry::Global().Apply(op, {}, &writes).IsNotFound());
}

TEST(FunctionRegistryTest, CustomRegistration) {
  FuncId custom = kFuncFirstCustom + 77;
  FunctionRegistry::Global().Register(
      custom, [](const OperationDesc&, const std::vector<ObjectValue>&,
                 std::vector<ObjectValue>* writes) {
        (*writes)[0] = {42};
        return Status::OK();
      });
  OperationDesc op;
  op.func = custom;
  op.writes = {1};
  std::vector<ObjectValue> writes{{}};
  ASSERT_TRUE(FunctionRegistry::Global().Apply(op, {}, &writes).ok());
  EXPECT_EQ(writes[0], Bytes({42}));
}

TEST(FunctionRegistryTest, MismatchedVectorsRejected) {
  OperationDesc op = MakeCopy(1, 2);
  std::vector<ObjectValue> writes{{}};
  EXPECT_TRUE(FunctionRegistry::Global()
                  .Apply(op, {}, &writes)  // missing read value
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace loglog
