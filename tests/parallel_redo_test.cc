#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "fault/fault_injector.h"
#include "sim/crash_harness.h"
#include "sim/workload.h"

namespace loglog {
namespace {

// Parallel partitioned REDO must be *observationally identical* to the
// serial scan: byte-identical stable store after recovery (and again
// after a full flush, proving the rebuilt cache and write graph match
// too) and equal outcome counters — across every combination of logging
// mode, write graph, flush policy and REDO test, with crash points and
// torn tails, and with outcome-neutral transient faults armed so the
// worker retry paths are exercised.

struct MatrixParam {
  LoggingMode logging;
  GraphKind graph;
  FlushPolicy flush;
  RedoTestKind redo;
  uint64_t seed;
  /// Adaptive logging policy on both harnesses: the logged class mix now
  /// mixes W_L with promoted W_P/W_PL and decision records, and the
  /// partitioned redo must still match the serial scan byte-for-byte.
  bool adaptive = false;
  uint64_t budget = 0;
};

std::string ParamName(const testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string s;
  s += p.logging == LoggingMode::kLogical ? "Logical" : "Physio";
  s += p.graph == GraphKind::kRefined ? "RW" : "W";
  switch (p.flush) {
    case FlushPolicy::kNativeAtomic:
      s += "Native";
      break;
    case FlushPolicy::kIdentityWrites:
      s += "Ident";
      break;
    case FlushPolicy::kFlushTransaction:
      s += "Ftxn";
      break;
    case FlushPolicy::kShadow:
      s += "Shadow";
      break;
  }
  switch (p.redo) {
    case RedoTestKind::kAlways:
      s += "Always";
      break;
    case RedoTestKind::kVsi:
      s += "Vsi";
      break;
    case RedoTestKind::kRsiGeneralized:
      s += "Rsi";
      break;
    case RedoTestKind::kRsiFixpoint:
      s += "Fix";
      break;
  }
  if (p.adaptive) {
    s += p.budget > 0 ? "AdaptBudget" : "Adapt";
  }
  s += "S" + std::to_string(p.seed);
  return s;
}

/// Full byte-level image of a stable store (value, vsi, crc per object).
using StableImage = std::map<ObjectId, std::tuple<ObjectValue, Lsn, uint32_t>>;

StableImage ImageOf(const StableStore& store) {
  StableImage image;
  store.ForEach([&](ObjectId id, const StoredObject& obj) {
    image[id] = {obj.value, obj.vsi, obj.crc};
  });
  return image;
}

class ParallelRedoMatrixTest : public testing::TestWithParam<MatrixParam> {};

TEST_P(ParallelRedoMatrixTest, ParallelMatchesSerialExactly) {
  const MatrixParam& p = GetParam();
  EngineOptions serial_opts;
  serial_opts.logging_mode = p.logging;
  serial_opts.graph_kind = p.graph;
  serial_opts.flush_policy = p.flush;
  serial_opts.redo_test = p.redo;
  serial_opts.purge_threshold_ops = 24;
  serial_opts.checkpoint_interval_ops = 60;
  serial_opts.recovery.redo_threads = 1;
  if (p.adaptive) {
    serial_opts.adaptive.enabled = true;
    serial_opts.adaptive.hot_interval_writes = 8.0;
    serial_opts.adaptive.cold_interval_writes = 24.0;
    serial_opts.adaptive.small_value_bytes = 32;
    serial_opts.adaptive.large_value_bytes = 96;
    serial_opts.adaptive.decision_cooldown_writes = 4;
    serial_opts.recovery_budget = p.budget;
  }
  EngineOptions parallel_opts = serial_opts;
  parallel_opts.recovery.redo_threads = 4;

  // Two harnesses driven in lockstep: identical seeds, identical ops,
  // identical crash points — the only difference is the redo thread
  // count.
  CrashHarness serial(serial_opts, p.seed);
  CrashHarness parallel(parallel_opts, p.seed);

  MixedWorkloadOptions wopts;
  wopts.seed = p.seed * 7919 + 1;
  MixedWorkload workload_s(wopts);
  MixedWorkload workload_p(wopts);
  Random script(p.seed * 31 + 7);

  for (const OperationDesc& op : workload_s.SetupOps()) {
    ASSERT_TRUE(serial.Execute(op).ok());
  }
  for (const OperationDesc& op : workload_p.SetupOps()) {
    ASSERT_TRUE(parallel.Execute(op).ok());
  }

  for (int round = 0; round < 2; ++round) {
    int ops = 40 + static_cast<int>(script.Uniform(80));
    for (int i = 0; i < ops; ++i) {
      OperationDesc op_s = workload_s.Next();
      OperationDesc op_p = workload_p.Next();
      Status st_s = serial.Execute(op_s);
      Status st_p = parallel.Execute(op_p);
      ASSERT_TRUE(st_s.ok() || st_s.IsNotFound()) << st_s.ToString();
      ASSERT_EQ(st_s.ok(), st_p.ok());
    }
    bool tear = script.Uniform(2) == 0;
    serial.Crash(tear);
    parallel.Crash(tear);

    // Outcome-neutral faults: TransientTimes(2) is always absorbed by
    // the 3-attempt retry budget, so it exercises the (worker-local)
    // retry paths without perturbing any decision.
    for (CrashHarness* h : {&serial, &parallel}) {
      h->disk().fault_injector().Arm(fault::kStoreRead,
                                     FaultSpec::TransientTimes(2));
      h->disk().fault_injector().Arm(fault::kRedoWorker,
                                     FaultSpec::TransientTimes(2));
    }

    RecoveryStats stats_s, stats_p;
    ASSERT_TRUE(serial.Recover(&stats_s).ok());
    ASSERT_TRUE(parallel.Recover(&stats_p).ok());

    // Identical stable state straight after recovery (flush-transaction
    // completions already landed), and identical counters.
    EXPECT_EQ(ImageOf(serial.disk().store()), ImageOf(parallel.disk().store()))
        << "round " << round << " post-recovery stores diverge";
    EXPECT_EQ(stats_s.log_records_total, stats_p.log_records_total);
    EXPECT_EQ(stats_s.records_scanned, stats_p.records_scanned);
    EXPECT_EQ(stats_s.ops_considered, stats_p.ops_considered);
    EXPECT_EQ(stats_s.ops_redone, stats_p.ops_redone);
    EXPECT_EQ(stats_s.ops_skipped_installed, stats_p.ops_skipped_installed);
    EXPECT_EQ(stats_s.ops_skipped_unexposed, stats_p.ops_skipped_unexposed);
    EXPECT_EQ(stats_s.ops_voided, stats_p.ops_voided);
    EXPECT_EQ(stats_s.flush_txns_completed, stats_p.flush_txns_completed);
    EXPECT_EQ(stats_s.redo_value_bytes, stats_p.redo_value_bytes);
    EXPECT_EQ(stats_s.expensive_redos, stats_p.expensive_redos);
    EXPECT_EQ(stats_s.redo_start, stats_p.redo_start);
    EXPECT_EQ(stats_s.torn_tail, stats_p.torn_tail);

    // A full flush drains the rebuilt cache through the write graph; the
    // stores staying identical proves the volatile state (cache entries,
    // graph nodes) was rebuilt identically too.
    ASSERT_TRUE(serial.engine().FlushAll().ok());
    ASSERT_TRUE(parallel.engine().FlushAll().ok());
    EXPECT_EQ(ImageOf(serial.disk().store()), ImageOf(parallel.disk().store()))
        << "round " << round << " post-flush stores diverge";

    // And both must of course be *correct*, not just equal.
    Status st = serial.VerifyAgainstReference();
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = parallel.VerifyAgainstReference();
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(serial.engine().cache().CheckInvariants().ok());
    ASSERT_TRUE(parallel.engine().cache().CheckInvariants().ok());
  }
}

std::vector<MatrixParam> BuildMatrix() {
  std::vector<MatrixParam> out;
  for (LoggingMode lm : {LoggingMode::kLogical, LoggingMode::kPhysiological}) {
    for (GraphKind gk : {GraphKind::kRefined, GraphKind::kW}) {
      for (FlushPolicy fp :
           {FlushPolicy::kNativeAtomic, FlushPolicy::kIdentityWrites,
            FlushPolicy::kFlushTransaction, FlushPolicy::kShadow}) {
        for (RedoTestKind rt :
             {RedoTestKind::kAlways, RedoTestKind::kVsi,
              RedoTestKind::kRsiGeneralized, RedoTestKind::kRsiFixpoint}) {
          for (uint64_t seed : {1u, 2u}) {
            out.push_back({lm, gk, fp, rt, seed});
          }
        }
      }
    }
  }
  // Adaptive-policy configurations (appended): the promoted class mix
  // and the budget's W_IP installs must be serial-equivalent too.
  for (uint64_t seed : {1u, 2u}) {
    out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                   FlushPolicy::kIdentityWrites,
                   RedoTestKind::kRsiGeneralized, seed, true, 0});
    out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                   FlushPolicy::kIdentityWrites,
                   RedoTestKind::kRsiGeneralized, seed, true, 32});
  }
  out.push_back({LoggingMode::kLogical, GraphKind::kW,
                 FlushPolicy::kIdentityWrites,
                 RedoTestKind::kRsiGeneralized, 1, true, 32});
  out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                 FlushPolicy::kIdentityWrites, RedoTestKind::kVsi, 1, true,
                 0});
  out.push_back({LoggingMode::kLogical, GraphKind::kRefined,
                 FlushPolicy::kFlushTransaction,
                 RedoTestKind::kRsiGeneralized, 2, true, 32});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ParallelRedoMatrixTest,
                         testing::ValuesIn(BuildMatrix()), ParamName);

}  // namespace
}  // namespace loglog
