#include <gtest/gtest.h>

#include <deque>

#include "common/random.h"
#include "domains/app/recoverable_app.h"
#include "domains/queue/recoverable_queue.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

TEST(QueueTest, FifoBasics) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  RecoverableQueue q(&engine);
  ASSERT_TRUE(q.Open().ok());
  EXPECT_TRUE(q.empty());
  ObjectValue v;
  EXPECT_TRUE(q.Dequeue(&v).IsNotFound());

  ASSERT_TRUE(q.Enqueue("first").ok());
  ASSERT_TRUE(q.Enqueue("second").ok());
  EXPECT_EQ(q.size(), 2u);
  ASSERT_TRUE(q.Peek(&v).ok());
  EXPECT_EQ(Slice(v).ToString(), "first");
  ASSERT_TRUE(q.Dequeue(&v).ok());
  EXPECT_EQ(Slice(v).ToString(), "first");
  ASSERT_TRUE(q.Dequeue(&v).ok());
  EXPECT_EQ(Slice(v).ToString(), "second");
  EXPECT_TRUE(q.empty());
}

TEST(QueueTest, LogicalEnqueueLogsNoPayload) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  RecoverableApp app(&engine, 500, 128);
  ASSERT_TRUE(app.Init(3).ok());
  RecoverableQueue q(&engine);
  ASSERT_TRUE(q.Open().ok());

  uint64_t before = engine.stats().op_log_bytes;
  ASSERT_TRUE(q.EnqueueFromApp(app.id(), 64 * 1024, 7).ok());
  EXPECT_LT(engine.stats().op_log_bytes - before, 128u);
  ObjectValue msg;
  ASSERT_TRUE(q.Dequeue(&msg).ok());
  EXPECT_EQ(msg.size(), 64u * 1024);
}

TEST(QueueTest, SurvivesCrashWithPendingMessages) {
  EngineOptions opts;
  opts.purge_threshold_ops = 6;
  CrashHarness harness(opts, 12);
  std::deque<std::string> model;
  {
    RecoverableQueue q(&harness.engine());
    ASSERT_TRUE(q.Open().ok());
    for (int i = 0; i < 20; ++i) {
      std::string payload = "msg-" + std::to_string(i);
      ASSERT_TRUE(q.Enqueue(payload).ok());
      model.push_back(payload);
    }
    ObjectValue v;
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(q.Dequeue(&v).ok());
      EXPECT_EQ(Slice(v).ToString(), model.front());
      model.pop_front();
    }
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());

  RecoverableQueue q(&harness.engine());
  ASSERT_TRUE(q.Open().ok());
  EXPECT_EQ(q.size(), model.size());
  ObjectValue v;
  while (!model.empty()) {
    ASSERT_TRUE(q.Dequeue(&v).ok());
    EXPECT_EQ(Slice(v).ToString(), model.front());
    model.pop_front();
  }
  EXPECT_TRUE(q.Dequeue(&v).IsNotFound());
}

// Consumed messages are transient objects: with the generalized rSI test
// their enqueue work is never re-executed after a crash.
TEST(QueueTest, ConsumedMessagesSkipRedo) {
  EngineOptions opts;
  opts.redo_test = RedoTestKind::kRsiFixpoint;
  opts.purge_threshold_ops = 1 << 20;  // keep everything uninstalled
  CrashHarness harness(opts, 5);
  {
    RecoverableQueue q(&harness.engine());
    ASSERT_TRUE(q.Open().ok());
    ObjectValue v;
    for (int i = 0; i < 15; ++i) {
      ASSERT_TRUE(q.Enqueue("payload-" + std::to_string(i)).ok());
    }
    for (int i = 0; i < 15; ++i) ASSERT_TRUE(q.Dequeue(&v).ok());
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  }
  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  // Every fully-consumed message's enqueue is skipped as unexposed.
  EXPECT_GE(stats.ops_skipped_unexposed, 10u);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

TEST(QueueTest, InterleavedProducerConsumerAcrossCrashes) {
  EngineOptions opts;
  opts.purge_threshold_ops = 10;
  opts.checkpoint_interval_ops = 40;
  CrashHarness harness(opts, 31);
  Random rng(31);
  std::deque<std::string> model;
  int produced = 0;

  RecoverableQueue* q = new RecoverableQueue(&harness.engine());
  ASSERT_TRUE(q->Open().ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 30; ++i) {
      if (rng.OneIn(2) || model.empty()) {
        std::string payload = "m" + std::to_string(produced++);
        ASSERT_TRUE(q->Enqueue(payload).ok());
        model.push_back(payload);
      } else {
        ObjectValue v;
        ASSERT_TRUE(q->Dequeue(&v).ok());
        EXPECT_EQ(Slice(v).ToString(), model.front());
        model.pop_front();
      }
    }
    ASSERT_TRUE(harness.engine().log().ForceAll().ok());
    delete q;
    q = nullptr;
    harness.Crash();
    ASSERT_TRUE(harness.Recover().ok());
    ASSERT_TRUE(harness.VerifyAgainstReference().ok());
    q = new RecoverableQueue(&harness.engine());
    ASSERT_TRUE(q->Open().ok());
    ASSERT_EQ(q->size(), model.size());
  }
  delete q;
}

}  // namespace
}  // namespace loglog
