#include <gtest/gtest.h>

#include "ops/op_builder.h"
#include "recovery/analysis.h"
#include "recovery/redo_test.h"
#include "sim/crash_harness.h"
#include "sim/workload.h"

namespace loglog {
namespace {

LogRecord Op(Lsn lsn, OperationDesc desc) {
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.lsn = lsn;
  rec.op = std::move(desc);
  return rec;
}

TEST(AnalysisTest, DotFromOperationsAndInstalls) {
  std::vector<LogRecord> records;
  records.push_back(Op(1, MakePhysicalWrite(10, "a")));
  records.push_back(Op(2, MakePhysicalWrite(11, "b")));
  LogRecord install;
  install.type = RecordType::kInstall;
  install.lsn = 3;
  install.installed_vars = {{10, kInvalidLsn}};  // 10 now clean
  records.push_back(install);
  records.push_back(Op(4, MakeDelta(11, 0, "c")));

  AnalysisResult a = RunAnalysis(records);
  EXPECT_FALSE(a.dot.contains(10));
  ASSERT_TRUE(a.dot.contains(11));
  EXPECT_EQ(a.dot.at(11), 2u);  // first uninstalled writer of 11
  EXPECT_EQ(a.redo_start, 2u);
}

TEST(AnalysisTest, CheckpointSeedsBaseline) {
  std::vector<LogRecord> records;
  records.push_back(Op(1, MakePhysicalWrite(10, "a")));
  LogRecord ckpt;
  ckpt.type = RecordType::kCheckpoint;
  ckpt.lsn = 2;
  ckpt.dot = {{20, 1, false}};
  records.push_back(ckpt);
  records.push_back(Op(3, MakePhysicalWrite(21, "b")));

  AnalysisResult a = RunAnalysis(records);
  EXPECT_EQ(a.last_checkpoint, 2u);
  // Object 10's pre-checkpoint record is ignored for the DOT (the
  // checkpoint snapshot is authoritative), 20 comes from the snapshot,
  // 21 from the post-checkpoint scan.
  EXPECT_FALSE(a.dot.contains(10));
  EXPECT_EQ(a.dot.at(20), 1u);
  EXPECT_EQ(a.dot.at(21), 3u);
  EXPECT_EQ(a.redo_start, 1u);
}

TEST(AnalysisTest, DeleteLifetimesAndReaderGating) {
  std::vector<LogRecord> records;
  records.push_back(Op(1, MakeCreate(10, "temp")));
  records.push_back(Op(2, MakeAppRead(30, 10)));  // reader of 10 at lsn 2
  records.push_back(Op(3, MakeDelete(10)));

  AnalysisResult a = RunAnalysis(records);
  EXPECT_EQ(a.deleted_at.at(10), 3u);
  // The create at lsn 1 cannot be dead-skipped while the reader at lsn 2
  // is possibly uninstalled (it writes 30, which is in the DOT).
  EXPECT_FALSE(DeadSkipAllowed(a, 10, 1));

  // Once the reader is known installed, the skip becomes legal.
  LogRecord install;
  install.type = RecordType::kInstall;
  install.lsn = 4;
  install.installed_vars = {{30, kInvalidLsn}};
  records.push_back(install);
  AnalysisResult b = RunAnalysis(records);
  EXPECT_TRUE(DeadSkipAllowed(b, 10, 1));
  // Writes after the delete are never dead-skipped.
  EXPECT_FALSE(DeadSkipAllowed(b, 10, 5));
}

TEST(AnalysisTest, RedoFixpointResolvesReaderChains) {
  // temp 10: created (1), read by op writing temp 20 (2), both deleted.
  // The conservative gate redoes the create of 10 (its reader at lsn 2
  // is rsi-redoable); the fixpoint sees the reader is itself dead-
  // skippable and skips the whole chain.
  std::vector<LogRecord> records;
  records.push_back(Op(1, MakeCreate(10, "temp")));
  records.push_back(Op(2, MakeCopy(20, 10)));
  records.push_back(Op(3, MakeDelete(20)));
  records.push_back(Op(4, MakeDelete(10)));
  AnalysisResult a = RunAnalysis(records);
  EXPECT_FALSE(DeadSkipAllowed(a, 10, 1));  // conservative gate blocks

  auto fixpoint = ComputeRedoFixpoint(records, a);
  EXPECT_FALSE(fixpoint.at(1));  // create of 10: skipped
  EXPECT_FALSE(fixpoint.at(2));  // copy into 20: skipped
  EXPECT_TRUE(fixpoint.at(3));   // the deletes themselves replay
  EXPECT_TRUE(fixpoint.at(4));

  // A live reader pins the chain: op 5 copies 10 into live object 30
  // before the delete of 10.
  records.clear();
  records.push_back(Op(1, MakeCreate(10, "temp")));
  records.push_back(Op(2, MakeCopy(30, 10)));  // 30 stays live
  records.push_back(Op(3, MakeDelete(10)));
  AnalysisResult b = RunAnalysis(records);
  auto fixpoint2 = ComputeRedoFixpoint(records, b);
  EXPECT_TRUE(fixpoint2.at(2));  // live copy must replay
  EXPECT_TRUE(fixpoint2.at(1));  // so the create must too
}

TEST(AnalysisTest, RecreateClearsDeadState) {
  std::vector<LogRecord> records;
  records.push_back(Op(1, MakeCreate(10, "v1")));
  records.push_back(Op(2, MakeDelete(10)));
  records.push_back(Op(3, MakeCreate(10, "v2")));
  AnalysisResult a = RunAnalysis(records);
  EXPECT_FALSE(a.deleted_at.contains(10));
}

TEST(AnalysisTest, CommittedFlushTxns) {
  std::vector<LogRecord> records;
  LogRecord begin;
  begin.type = RecordType::kFlushTxnBegin;
  begin.lsn = 1;
  records.push_back(begin);
  LogRecord commit;
  commit.type = RecordType::kFlushTxnCommit;
  commit.lsn = 2;
  commit.ref_lsn = 1;
  records.push_back(commit);
  LogRecord dangling;
  dangling.type = RecordType::kFlushTxnBegin;
  dangling.lsn = 3;
  records.push_back(dangling);
  AnalysisResult a = RunAnalysis(records);
  EXPECT_TRUE(a.committed_flush_txns.contains(1));
  EXPECT_FALSE(a.committed_flush_txns.contains(3));
}

// Recovery is idempotent (Theorem 2): crashing during/after recovery and
// recovering again converges to the same state.
TEST(RecoveryTest, IdempotentUnderRepeatedCrashes) {
  EngineOptions opts;
  opts.purge_threshold_ops = 16;
  CrashHarness harness(opts, 5);
  MixedWorkloadOptions wopts;
  wopts.seed = 55;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }
  for (int i = 0; i < 120; ++i) {
    Status st = harness.Execute(workload.Next());
    ASSERT_TRUE(st.ok() || st.IsNotFound());
  }
  // Crash; recover; crash again *without* flushing; recover; verify.
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  harness.Crash();  // recovery's own state dies
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

// A third crash mid-recovery: recover, purge a few nodes (partial
// progress reaches the disk), crash, recover again.
TEST(RecoveryTest, CrashMidRecoveryAfterPartialFlush) {
  EngineOptions opts;
  opts.purge_threshold_ops = 1 << 20;  // no auto purge: lots of dirt
  CrashHarness harness(opts, 6);
  MixedWorkloadOptions wopts;
  wopts.seed = 66;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }
  for (int i = 0; i < 100; ++i) {
    Status st = harness.Execute(workload.Next());
    ASSERT_TRUE(st.ok() || st.IsNotFound());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  // Partial post-recovery flushing, then crash again.
  for (int i = 0; i < 3; ++i) {
    Status st = harness.engine().PurgeOne();
    if (st.IsNotFound()) break;
    ASSERT_TRUE(st.ok());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

class TornTailTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TornTailTest, TornFinalForceIsDiscardedCleanly) {
  EngineOptions opts;
  opts.purge_threshold_ops = 8;
  CrashHarness harness(opts, GetParam());
  MixedWorkloadOptions wopts;
  wopts.seed = GetParam() * 31 + 7;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 60; ++i) {
      Status st = harness.Execute(workload.Next());
      ASSERT_TRUE(st.ok() || st.IsNotFound());
    }
    harness.Crash(/*tear_tail=*/true);
    RecoveryStats stats;
    ASSERT_TRUE(harness.Recover(&stats).ok());
    ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TornTailTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Crash between a flush transaction's commit and its in-place writes:
// recovery completes the transaction from the logged values.
TEST(RecoveryTest, CompletesInterruptedFlushTransaction) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    // History: two ops creating objects 1 and 2, then a committed flush
    // transaction whose in-place writes never happened.
    log.Append(Op(0, MakeCreate(1, "one")));
    log.Append(Op(0, MakeCreate(2, "two")));
    LogRecord begin;
    begin.type = RecordType::kFlushTxnBegin;
    begin.flush_values.push_back({1, 1, {'o', 'n', 'e'}, false});
    begin.flush_values.push_back({2, 2, {'t', 'w', 'o'}, false});
    Lsn begin_lsn = log.Append(std::move(begin));
    LogRecord commit;
    commit.type = RecordType::kFlushTxnCommit;
    commit.ref_lsn = begin_lsn;
    log.Append(std::move(commit));
    ASSERT_TRUE(log.ForceAll().ok());
    // Crash here: stable store never saw objects 1 and 2.
  }
  ASSERT_FALSE(disk.store().Exists(1));
  RecoveryEngine engine(EngineOptions{}, &disk);
  RecoveryStats stats;
  ASSERT_TRUE(engine.Recover(&stats).ok());
  EXPECT_GE(stats.flush_txns_completed, 1u);
  ASSERT_TRUE(engine.FlushAll().ok());
  StoredObject obj;
  ASSERT_TRUE(disk.store().Read(1, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "one");
  ASSERT_TRUE(disk.store().Read(2, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "two");
}

// An uncommitted flush transaction is ignored entirely.
TEST(RecoveryTest, IgnoresUncommittedFlushTransaction) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    log.Append(Op(0, MakeCreate(1, "one")));
    LogRecord begin;
    begin.type = RecordType::kFlushTxnBegin;
    begin.flush_values.push_back({9, 5, {'x'}, false});
    log.Append(std::move(begin));
    ASSERT_TRUE(log.ForceAll().ok());
  }
  RecoveryEngine engine(EngineOptions{}, &disk);
  ASSERT_TRUE(engine.Recover().ok());
  ASSERT_TRUE(engine.FlushAll().ok());
  EXPECT_TRUE(disk.store().Exists(1));
  EXPECT_FALSE(disk.store().Exists(9));
}

// The three REDO tests produce decreasing amounts of redo work on the
// same crash image, and all of them recover correctly.
TEST(RecoveryTest, RedoTestGradient) {
  uint64_t redone[4];
  uint64_t expensive[4];
  int idx = 0;
  for (RedoTestKind kind :
       {RedoTestKind::kAlways, RedoTestKind::kVsi,
        RedoTestKind::kRsiGeneralized, RedoTestKind::kRsiFixpoint}) {
    EngineOptions opts;
    opts.redo_test = kind;
    opts.purge_threshold_ops = 12;
    opts.checkpoint_interval_ops = 40;
    CrashHarness harness(opts, 99);
    MixedWorkloadOptions wopts;
    wopts.seed = 1234;  // identical history across kinds
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      ASSERT_TRUE(harness.Execute(op).ok());
    }
    for (int i = 0; i < 300; ++i) {
      Status st = harness.Execute(workload.Next());
      ASSERT_TRUE(st.ok() || st.IsNotFound());
    }
    harness.Crash();
    RecoveryStats stats;
    ASSERT_TRUE(harness.Recover(&stats).ok());
    ASSERT_TRUE(harness.VerifyAgainstReference().ok());
    redone[idx] = stats.ops_redone + stats.ops_voided;
    expensive[idx] = stats.expensive_redos;
    ++idx;
  }
  // kVsi skips installed ops that kAlways replays; the generalized test
  // skips at least as much as kVsi; the fixpoint at least as much again.
  EXPECT_LE(redone[1], redone[0]);
  EXPECT_LE(redone[2], redone[1]);
  EXPECT_LE(redone[3], redone[2]);
  EXPECT_LE(expensive[2], expensive[1]);
  EXPECT_LE(expensive[3], expensive[2]);
}

// Deleted transient objects: with the generalized test their operations
// are never re-executed.
TEST(RecoveryTest, DeletedTempOpsAreSkipped) {
  EngineOptions opts;
  opts.redo_test = RedoTestKind::kRsiGeneralized;
  opts.purge_threshold_ops = 1 << 20;  // keep everything uninstalled
  CrashHarness harness(opts, 17);
  // Create temps, churn them, delete them; only one live object remains.
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "live")).ok());
  for (ObjectId t = 100; t < 110; ++t) {
    ASSERT_TRUE(harness.Execute(MakeCreate(t, "temp-data")).ok());
    ASSERT_TRUE(harness.Execute(MakeDelta(t, 0, "x")).ok());
    ASSERT_TRUE(harness.Execute(MakeDelete(t)).ok());
  }
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  // The delta on each deleted temp is skipped as unexposed. The create
  // is conservatively redone: the delta *read* the temp, and the reader
  // gate (DeadSkipAllowed) over-approximates redoable readers without
  // chasing the fixpoint. The deletes themselves are redone (erases).
  EXPECT_GE(stats.ops_skipped_unexposed, 10u);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

// Same workload under the fixpoint REDO test: the reader chain resolves
// (the delta itself is skippable), so creates are skipped too.
TEST(RecoveryTest, FixpointSkipsCreatesOfDeletedTemps) {
  EngineOptions opts;
  opts.redo_test = RedoTestKind::kRsiFixpoint;
  opts.purge_threshold_ops = 1 << 20;
  CrashHarness harness(opts, 17);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "live")).ok());
  for (ObjectId t = 100; t < 110; ++t) {
    ASSERT_TRUE(harness.Execute(MakeCreate(t, "temp-data")).ok());
    ASSERT_TRUE(harness.Execute(MakeDelta(t, 0, "x")).ok());
    ASSERT_TRUE(harness.Execute(MakeDelete(t)).ok());
  }
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  // Both the create and the delta of every temp (2 x 10) are skipped.
  EXPECT_GE(stats.ops_skipped_unexposed, 20u);
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

// The redo scan starts at the minimum rSI: operations installed before
// the last checkpoint are not even scanned under the generalized test.
TEST(RecoveryTest, RedoScanStartAdvancesWithCheckpoints) {
  EngineOptions opts;
  opts.redo_test = RedoTestKind::kRsiGeneralized;
  opts.purge_threshold_ops = 4;
  CrashHarness harness(opts, 23);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        harness.Execute(MakePhysicalWrite(1 + (i % 3), "value")).ok());
  }
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.engine().Checkpoint().ok());
  ASSERT_TRUE(harness.Execute(MakePhysicalWrite(9, "tail")).ok());
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());
  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  EXPECT_LE(stats.ops_considered, 2u);  // only the tail write (+ slack)
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

// Section 5's "expanded REDO" trial execution: re-executions against
// inapplicable state are voided without touching exposed objects.
TEST(RecoveryTest, TrialExecutionVoidsInapplicableReplays) {
  // Case (2c analog): an operation whose input no longer exists. Build
  // the log by hand: op 1 creates X; op 2 copies X into Y; op 3 deletes
  // X. Pretend ops 2 and 3 installed (flush Y's result and the delete)
  // but with a stale install-record-free log and the kAlways test, op 2
  // gets re-tried against a state where X is gone — and must void.
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    LogRecord r1 = Op(0, MakeCreate(10, "source"));
    log.Append(std::move(r1));
    LogRecord r2 = Op(0, MakeCopy(11, 10));
    log.Append(std::move(r2));
    LogRecord r3 = Op(0, MakeDelete(10));
    log.Append(std::move(r3));
    ASSERT_TRUE(log.ForceAll().ok());
  }
  // Stable state as if everything installed except... X's create was
  // never flushed; Y was flushed with the copy's result; X was erased.
  disk.store().Write(11, "source", 2);

  EngineOptions opts;
  opts.redo_test = RedoTestKind::kAlways;
  RecoveryEngine engine(opts, &disk);
  RecoveryStats stats;
  ASSERT_TRUE(engine.Recover(&stats).ok());
  // The create redoes (X reappears in cache), the copy is skipped via
  // its vSI (Y@2 >= lsn 2), the delete redoes. Now tear X's create off:
  // nothing voids here — so assert the baseline first.
  EXPECT_EQ(stats.ops_voided, 0u);
  ASSERT_TRUE(engine.FlushAll().ok());
  EXPECT_FALSE(disk.store().Exists(10));

  // Second image: Y was NOT flushed (vSI 0) but X's delete installed.
  SimulatedDisk disk2;
  {
    LogManager log(&disk2.log());
    LogRecord r2 = Op(0, MakeCopy(11, 10));
    r2.lsn = 2;  // preserve numbering: op 1's record was truncated away
    LogRecord r1 = Op(0, MakeCreate(10, "source"));
    log.Append(std::move(r1));
    log.Append(std::move(r2));
    LogRecord r3 = Op(0, MakeDelete(10));
    log.Append(std::move(r3));
    ASSERT_TRUE(log.ForceAll().ok());
  }
  disk2.log().TearTail(0);  // no tear; full log
  // Stable: X absent (delete installed, create's effect superseded), Y
  // stale. Replaying the copy needs X — which recovery first rebuilds
  // from the create record, so it succeeds; then the delete erases X.
  RecoveryEngine engine2(opts, &disk2);
  RecoveryStats stats2;
  ASSERT_TRUE(engine2.Recover(&stats2).ok());
  ASSERT_TRUE(engine2.FlushAll().ok());
  StoredObject y;
  ASSERT_TRUE(disk2.store().Read(11, &y).ok());
  EXPECT_EQ(Slice(y.value).ToString(), "source");
  EXPECT_FALSE(disk2.store().Exists(10));
}

// Case (2b analog): a read object newer than the operation being
// re-tried marks the replay inapplicable (the operation is installed in
// every explanation) and it voids.
TEST(RecoveryTest, TrialExecutionVoidsNewerInputs) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    log.Append(Op(0, MakeCreate(10, "v1")));       // lsn 1
    log.Append(Op(0, MakeCopy(11, 10)));           // lsn 2: Y := X@1
    ASSERT_TRUE(log.ForceAll().ok());
  }
  // Stable: X carries a FUTURE version (vSI 5, as a lost-log media
  // scenario would produce), Y never flushed. The copy at lsn 2 cannot
  // replay against X@5 — the trial execution voids it.
  disk.store().Write(10, "v-newer", 5);

  EngineOptions opts;
  opts.redo_test = RedoTestKind::kAlways;
  RecoveryEngine engine(opts, &disk);
  RecoveryStats stats;
  ASSERT_TRUE(engine.Recover(&stats).ok());
  EXPECT_GE(stats.ops_voided, 1u);
  // Exposed objects were not touched by the voided replay.
  ASSERT_TRUE(engine.FlushAll().ok());
  StoredObject x;
  ASSERT_TRUE(disk.store().Read(10, &x).ok());
  EXPECT_EQ(Slice(x.value).ToString(), "v-newer");
}

TEST(RecoveryTest, ExecuteRefusedBeforeRecover) {
  SimulatedDisk disk;
  {
    RecoveryEngine engine(EngineOptions{}, &disk);
    ASSERT_TRUE(engine.Execute(MakeCreate(1, "x")).ok());
    ASSERT_TRUE(engine.log().ForceAll().ok());
  }
  RecoveryEngine engine(EngineOptions{}, &disk);
  EXPECT_TRUE(
      engine.Execute(MakeCreate(2, "y")).IsFailedPrecondition());
  ASSERT_TRUE(engine.Recover().ok());
  EXPECT_TRUE(engine.Execute(MakeCreate(2, "y")).ok());
}

TEST(RecoveryTest, EmptyDiskNeedsNoRecovery) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  EXPECT_TRUE(engine.Execute(MakeCreate(1, "x")).ok());
}

}  // namespace
}  // namespace loglog
