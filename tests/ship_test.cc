#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backup/backup_manager.h"
#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "ship/divergence_audit.h"
#include "ship/log_shipper.h"
#include "ship/replication_channel.h"
#include "ship/ship_frame.h"
#include "ship/standby_applier.h"
#include "sim/failover_storm.h"
#include "sim/workload.h"
#include "storage/disk_image.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

// --- Frame codec ------------------------------------------------------

ShipBatch MakeBatch(Lsn start, int n) {
  ShipBatch batch;
  batch.start_lsn = start;
  batch.end_lsn = start + static_cast<Lsn>(n) - 1;
  for (int i = 0; i < n; ++i) {
    LogRecord rec;
    rec.type = RecordType::kOperation;
    rec.lsn = start + static_cast<Lsn>(i);
    rec.op = MakePhysicalWrite(100 + i, "frame-payload-bytes");
    batch.records.push_back(std::move(rec));
  }
  return batch;
}

TEST(ShipFrameTest, RoundTrips) {
  ShipBatch batch = MakeBatch(7, 5);
  std::vector<uint8_t> frame;
  EncodeShipFrame(batch, &frame);

  ShipBatch decoded;
  ASSERT_TRUE(DecodeShipFrame(Slice(frame), &decoded).ok());
  EXPECT_EQ(decoded.start_lsn, 7u);
  EXPECT_EQ(decoded.end_lsn, 11u);
  ASSERT_EQ(decoded.records.size(), 5u);
  for (size_t i = 0; i < decoded.records.size(); ++i) {
    EXPECT_EQ(decoded.records[i].lsn, batch.records[i].lsn);
    EXPECT_EQ(decoded.records[i].op.writes, batch.records[i].op.writes);
  }
}

TEST(ShipFrameTest, DetectsDamage) {
  std::vector<uint8_t> frame;
  EncodeShipFrame(MakeBatch(1, 3), &frame);

  // Any single flipped bit anywhere in the frame must surface as
  // Corruption (magic, header cross-checks, or the payload CRC).
  for (size_t byte = 0; byte < frame.size(); byte += 7) {
    std::vector<uint8_t> damaged = frame;
    damaged[byte] ^= 0x10;
    ShipBatch out;
    EXPECT_TRUE(DecodeShipFrame(Slice(damaged), &out).IsCorruption())
        << "byte " << byte;
  }
  // Truncation at any point must too.
  for (size_t len = 0; len < frame.size(); len += 11) {
    ShipBatch out;
    EXPECT_TRUE(
        DecodeShipFrame(Slice(frame.data(), len), &out).IsCorruption())
        << "len " << len;
  }
  // Trailing garbage as well.
  std::vector<uint8_t> padded = frame;
  padded.push_back(0xab);
  ShipBatch out;
  EXPECT_TRUE(DecodeShipFrame(Slice(padded), &out).IsCorruption());
}

// --- End-to-end replication ------------------------------------------

// Drives shipper and standby until the standby is caught up with
// everything stable on the primary (bounded; fails the test if stuck).
void DrainPipeline(LogShipper* shipper, StandbyApplier* standby,
                   ReplicationChannel* channel) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(shipper->Poll().ok());
    ASSERT_TRUE(standby->Pump().ok());
    if (standby->applied_lsn() >= shipper->durable_lsn() &&
        channel->pending_frames() == 0) {
      return;
    }
  }
  FAIL() << "replication pipeline failed to drain (applied "
         << standby->applied_lsn() << " vs durable "
         << shipper->durable_lsn() << ")";
}

// Byte-identical stable state: every object present in either store must
// exist in both with equal value AND equal vSI.
void ExpectStoresIdentical(const StableStore& primary,
                           const StableStore& standby) {
  uint64_t compared = 0;
  primary.ForEach([&](ObjectId id, const StoredObject& obj) {
    if (!standby.Exists(id)) {
      ADD_FAILURE() << "object " << id << " missing on standby";
      return;
    }
    StoredObject other;
    Status st = standby.Read(id, &other);
    if (!st.ok()) {
      ADD_FAILURE() << "standby read of " << id << ": " << st.ToString();
      return;
    }
    EXPECT_EQ(obj.value, other.value) << "object " << id;
    EXPECT_EQ(obj.vsi, other.vsi) << "object " << id;
    ++compared;
  });
  standby.ForEach([&](ObjectId id, const StoredObject&) {
    EXPECT_TRUE(primary.Exists(id))
        << "standby has extra object " << id;
  });
  EXPECT_GT(compared, 0u);
}

struct PrimaryNode {
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<RecoveryEngine> engine;
  MixedWorkload workload;

  explicit PrimaryNode(const EngineOptions& options, uint64_t seed)
      : workload([&] {
          MixedWorkloadOptions w;
          w.seed = seed;
          return w;
        }()) {
    disk = std::make_unique<SimulatedDisk>();
    engine = std::make_unique<RecoveryEngine>(options, disk.get());
    for (const OperationDesc& op : workload.SetupOps()) {
      EXPECT_TRUE(engine->Execute(op).ok());
    }
  }

  void Run(int ops, LogShipper* shipper = nullptr,
           StandbyApplier* standby = nullptr, int poll_every = 8) {
    for (int i = 0; i < ops; ++i) {
      Status st = engine->Execute(workload.Next());
      ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
      if (shipper != nullptr && i % poll_every == 0) {
        // The shipper only ships *stable* bytes; force the WAL so the
        // stream actually flows mid-burst instead of all at quiesce.
        ASSERT_TRUE(engine->log().ForceAll().ok());
        ASSERT_TRUE(shipper->Poll().ok());
        ASSERT_TRUE(standby->Pump().ok());
      }
    }
  }

  // Installs everything and makes the log stable, so the stores can be
  // compared after the standby drains.
  void Quiesce() {
    ASSERT_TRUE(engine->FlushAll().ok());
    ASSERT_TRUE(engine->log().ForceAll().ok());
  }
};

// (a) Steady-state streaming: standby state and vSIs are byte-identical
// to the primary after interleaved ship/apply.
TEST(ShipTest, SteadyStateStreamingConverges) {
  EngineOptions opts;
  PrimaryNode primary(opts, /*seed=*/7);
  ReplicationChannel channel;
  StandbyApplier standby(&channel);
  LogShipper shipper(&primary.disk->log(), &channel);

  primary.Run(300, &shipper, &standby);
  primary.Quiesce();
  DrainPipeline(&shipper, &standby, &channel);
  ASSERT_TRUE(standby.cache()->FlushAll().ok());

  ExpectStoresIdentical(primary.disk->store(), standby.disk()->store());
  EXPECT_GT(shipper.stats().batches_sent, 0u);
  EXPECT_EQ(standby.stats().batches_gap, 0u);
  EXPECT_EQ(standby.stats().frames_corrupt, 0u);

  // The original primary's archive covers its whole history, so the
  // one-shot audit applies: sequential replay == standby stable state.
  DivergenceReport report;
  ASSERT_TRUE(RunDivergenceAudit(primary.disk->log().ArchiveContents(),
                                 standby.applied_lsn(),
                                 standby.disk()->store(), &report)
                  .ok())
      << report.ToString();
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.objects_compared, 0u);
}

// Checkpoints ship too: the standby mirrors the primary's truncation and
// still converges.
TEST(ShipTest, CheckpointsShipAndTruncateStandbyLog) {
  EngineOptions opts;
  PrimaryNode primary(opts, /*seed=*/13);
  ReplicationChannel channel;
  StandbyApplier standby(&channel);
  LogShipper shipper(&primary.disk->log(), &channel);

  primary.Run(80, &shipper, &standby);
  ASSERT_TRUE(primary.engine->Checkpoint().ok());
  primary.Run(80, &shipper, &standby);
  primary.Quiesce();
  DrainPipeline(&shipper, &standby, &channel);
  ASSERT_TRUE(standby.cache()->FlushAll().ok());

  EXPECT_GE(standby.stats().checkpoints_honored, 1u);
  ExpectStoresIdentical(primary.disk->store(), standby.disk()->store());
}

// (b) Cold catch-up from a fuzzy backup: the standby seeds from the
// image, then streams exactly the delta — through the parallel-redo
// burst path.
TEST(ShipTest, ColdCatchupFromFuzzyBackup) {
  EngineOptions opts;
  // No auto-purging: keeps the delta one contiguous run of operation
  // records so the burst reliably crosses the parallel threshold.
  opts.purge_threshold_ops = 0;
  PrimaryNode primary(opts, /*seed=*/21);
  primary.Run(150);
  // Install the state so far, then keep running: the image will reflect
  // lsn <= flush point exactly while the most recent operations live
  // only in the log — a genuinely fuzzy seed.
  ASSERT_TRUE(primary.engine->FlushAll().ok());
  primary.Run(20);

  BackupManager backup(primary.disk.get(), /*repair_order=*/true);
  ASSERT_TRUE(backup.Begin().ok());
  while (!backup.done()) {
    ASSERT_TRUE(backup.Step(16).ok());
  }

  ReplicationChannel channel;
  StandbyOptions sopts;
  sopts.redo_threads = 2;
  sopts.parallel_apply_threshold = 16;
  StandbyApplier standby(&channel, sopts);
  ASSERT_TRUE(standby.SeedFromBackup(backup.image()).ok());
  EXPECT_GT(standby.applied_lsn(), 0u);

  primary.Run(120);
  primary.Quiesce();
  LogShipper shipper(&primary.disk->log(), &channel);
  DrainPipeline(&shipper, &standby, &channel);
  ASSERT_TRUE(standby.cache()->FlushAll().ok());

  EXPECT_GT(standby.stats().parallel_bursts, 0u);
  ExpectStoresIdentical(primary.disk->store(), standby.disk()->store());
  DivergenceReport report;
  ASSERT_TRUE(RunDivergenceAudit(primary.disk->log().ArchiveContents(),
                                 standby.applied_lsn(),
                                 standby.disk()->store(), &report)
                  .ok())
      << report.ToString();
}

// (b') Cold catch-up from a full LLIMG001 disk image.
TEST(ShipTest, ColdCatchupFromDiskImage) {
  EngineOptions opts;
  PrimaryNode primary(opts, /*seed=*/29);
  primary.Run(120);
  primary.Quiesce();

  std::vector<uint8_t> image;
  SaveDiskImage(*primary.disk, &image);

  ReplicationChannel channel;
  StandbyApplier standby(&channel);
  ASSERT_TRUE(standby.SeedFromDiskImage(Slice(image)).ok());
  EXPECT_EQ(standby.applied_lsn(),
            primary.engine->log().last_assigned_lsn());

  primary.Run(100);
  primary.Quiesce();
  LogShipper shipper(&primary.disk->log(), &channel);
  DrainPipeline(&shipper, &standby, &channel);
  ASSERT_TRUE(standby.cache()->FlushAll().ok());

  ExpectStoresIdentical(primary.disk->store(), standby.disk()->store());
}

// (c) Channel faults: silent drops, visible disconnects, in-flight
// damage, and duplicated delivery all resolve through the watermark
// protocol, and the fault counters prove each path actually ran.
TEST(ShipTest, ChannelFaultsConverge) {
  EngineOptions opts;
  PrimaryNode primary(opts, /*seed=*/37);
  FaultInjector* inj = &primary.disk->fault_injector();
  ReplicationChannel channel(inj);
  StandbyApplier standby(&channel);
  LogShipper shipper(&primary.disk->log(), &channel);

  struct Round {
    std::string_view site;
    FaultSpec spec;
  };
  const Round rounds[] = {
      {fault::kShipSend, FaultSpec::LostOnce()},
      {fault::kShipSend, FaultSpec::TransientOnce()},
      {fault::kShipSend, FaultSpec::BitFlipOnce(0xfeed)},
      {fault::kShipSend, FaultSpec::TornOnce(0xbeef)},
      {fault::kShipDuplicate,
       FaultSpec::Probabilistic(FaultAction::kLostWrite, 100, 0xd0d0,
                                /*max_fires=*/2)},
  };
  for (const Round& round : rounds) {
    inj->Arm(round.site, round.spec);
    primary.Run(48, &shipper, &standby, /*poll_every=*/4);
    inj->Disarm(round.site);
    primary.Quiesce();
    DrainPipeline(&shipper, &standby, &channel);
  }
  ASSERT_TRUE(standby.cache()->FlushAll().ok());

  // Every injected failure mode left its fingerprint...
  EXPECT_GE(standby.stats().batches_gap, 1u);       // lost frame
  EXPECT_GE(shipper.stats().reconnects, 1u);        // visible disconnect
  EXPECT_GE(standby.stats().frames_corrupt, 2u);    // bit flip + tear
  EXPECT_GE(standby.stats().batches_duplicate, 1u); // duplicated delivery
  EXPECT_GE(shipper.stats().resyncs, 1u);           // NAK-driven rewind
  // ...and none of them cost convergence.
  ExpectStoresIdentical(primary.disk->store(), standby.disk()->store());
  DivergenceReport report;
  ASSERT_TRUE(RunDivergenceAudit(primary.disk->log().ArchiveContents(),
                                 standby.applied_lsn(),
                                 standby.disk()->store(), &report)
                  .ok())
      << report.ToString();
}

// (d) Failover promotion mid-storm: repeated primary-crash -> promote ->
// audit -> re-seed rounds, with parallel redo on the standby.
TEST(ShipTest, FailoverStormPromotesAndAudits) {
  FailoverStormOptions options;
  options.seed = 11;
  options.rounds = 3;
  options.min_ops = 32;
  options.max_ops = 96;
  options.standby.redo_threads = 2;
  options.standby.parallel_apply_threshold = 24;
  // Keep the shipped stream free of install records so catch-up runs
  // stay contiguous (parallel bursts).
  options.engine.log_installs = false;

  FailoverStormStats stats;
  Status st = RunFailoverStorm(options, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.promotions, 3u);
  EXPECT_EQ(stats.reseeds, 3u);
  EXPECT_EQ(stats.audits_passed, 3u);
  EXPECT_GT(stats.ops_executed, 0u);
  EXPECT_GT(stats.rto_us_max, 0u);
}

// A promoted standby serves the workload: execute fresh operations on
// the returned engine and verify them.
TEST(ShipTest, PromotedStandbyServesWrites) {
  EngineOptions opts;
  PrimaryNode primary(opts, /*seed=*/43);
  ReplicationChannel channel;
  StandbyApplier standby(&channel);
  LogShipper shipper(&primary.disk->log(), &channel);
  primary.Run(120, &shipper, &standby);
  primary.Quiesce();
  DrainPipeline(&shipper, &standby, &channel);

  // Primary dies; standby promotes and serves.
  const Lsn durable = shipper.durable_lsn();
  primary.engine.reset();
  PromotionResult promo;
  ASSERT_TRUE(standby.Promote(opts, &promo).ok());
  EXPECT_TRUE(standby.promoted());
  EXPECT_EQ(promo.applied_lsn, durable);
  EXPECT_GT(promo.rto_us, 0u);

  Lsn lsn = 0;
  ASSERT_TRUE(
      promo.engine->Execute(MakeCreate(500, "post-failover"), &lsn).ok());
  EXPECT_GT(lsn, promo.applied_lsn);
  ObjectValue value;
  ASSERT_TRUE(promo.engine->Read(500, &value).ok());
  EXPECT_EQ(Slice(value), Slice("post-failover"));

  // A second promotion attempt must refuse.
  PromotionResult again;
  EXPECT_TRUE(standby.Promote(opts, &again).IsFailedPrecondition());
}

// Adaptive primary: the shipped stream mixes W_L, promoted W_P/W_PL and
// kPolicyDecision control records. The standby consumes the control
// records without applying them and still converges to byte-identical
// values and vSIs; the divergence audit stays clean.
TEST(ShipTest, AdaptivePolicyStreamConverges) {
  EngineOptions opts;
  opts.adaptive.enabled = true;
  opts.adaptive.hot_interval_writes = 8.0;
  opts.adaptive.cold_interval_writes = 24.0;
  opts.adaptive.small_value_bytes = 32;
  opts.adaptive.large_value_bytes = 96;
  opts.adaptive.decision_cooldown_writes = 4;
  opts.recovery_budget = 48;

  SimulatedDisk disk;
  RecoveryEngine primary(opts, &disk);
  ReplicationChannel channel;
  StandbyApplier standby(&channel);
  LogShipper shipper(&disk.log(), &channel);

  ASSERT_TRUE(primary.Execute(MakeCreate(1, "app-state")).ok());
  primary.MarkHot(1);
  for (int i = 0; i < 120; ++i) {
    // Hot small app traffic stays W_L; every 12th op emits a large cold
    // file value that the policy promotes to a blind W_P.
    ASSERT_TRUE(primary.Execute(MakeAppExecute(1, i)).ok());
    if (i % 12 == 0) {
      ASSERT_TRUE(
          primary.Execute(MakeAppWrite(1, 200 + (i / 12) % 3, 150, i)).ok());
    }
    if (i % 8 == 0) {
      ASSERT_TRUE(primary.log().ForceAll().ok());
      ASSERT_TRUE(shipper.Poll().ok());
      ASSERT_TRUE(standby.Pump().ok());
    }
  }
  // The policy actually flipped classes, so decision records shipped.
  EXPECT_GT(primary.stats().policy_decisions, 0u);
  EXPECT_GT(primary.stats().promoted_physical, 0u);

  ASSERT_TRUE(primary.FlushAll().ok());
  ASSERT_TRUE(primary.log().ForceAll().ok());
  DrainPipeline(&shipper, &standby, &channel);
  ASSERT_TRUE(standby.cache()->FlushAll().ok());

  ExpectStoresIdentical(disk.store(), standby.disk()->store());
  EXPECT_EQ(standby.stats().batches_gap, 0u);
  EXPECT_EQ(standby.stats().frames_corrupt, 0u);

  DivergenceReport report;
  ASSERT_TRUE(RunDivergenceAudit(disk.log().ArchiveContents(),
                                 standby.applied_lsn(),
                                 standby.disk()->store(), &report)
                  .ok())
      << report.ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.objects_compared, 0u);
}

// Replicated appends preserve primary LSNs and keep the standby's LSN
// counter in lock-step.
TEST(ShipTest, AppendReplicatedKeepsPrimaryLsns) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.op = MakePhysicalWrite(1, "x");
  rec.lsn = 5;
  EXPECT_EQ(log.AppendReplicated(rec), 5u);
  rec.lsn = 6;
  EXPECT_EQ(log.AppendReplicated(rec), 6u);
  // A gap (the primary's control records are not appended) is fine; the
  // counter resumes past it.
  rec.lsn = 9;
  EXPECT_EQ(log.AppendReplicated(rec), 9u);
  EXPECT_EQ(log.last_assigned_lsn(), 9u);
  ASSERT_TRUE(log.ForceAll().ok());
  EXPECT_EQ(log.last_stable_lsn(), 9u);
}

}  // namespace
}  // namespace loglog
