#include <gtest/gtest.h>

#include <set>

#include "sim/crash_harness.h"
#include "sim/reference_executor.h"
#include "sim/workload.h"

namespace loglog {
namespace {

TEST(ReferenceExecutorTest, AppliesAndDeletes) {
  ReferenceExecutor ref;
  ASSERT_TRUE(ref.Apply(MakeCreate(1, "one")).ok());
  ASSERT_TRUE(ref.Apply(MakeCopy(2, 1)).ok());
  ObjectValue v;
  ASSERT_TRUE(ref.Get(2, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "one");
  ASSERT_TRUE(ref.Apply(MakeDelete(1)).ok());
  EXPECT_FALSE(ref.Exists(1));
  EXPECT_TRUE(ref.Apply(MakeCopy(3, 1)).IsNotFound());
}

TEST(ReferenceExecutorTest, ReplaysArchiveIncludingTruncatedHistory) {
  EngineOptions opts;
  opts.checkpoint_interval_ops = 5;  // aggressive truncation
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.Execute(MakePhysicalWrite(1, "v" +
                                                        std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(engine.FlushAll().ok());
  ASSERT_TRUE(engine.log().ForceAll().ok());
  // The live log is truncated, but the archive still replays everything.
  ReferenceExecutor ref;
  ASSERT_TRUE(ref.ReplayLog(disk.log().ArchiveContents()).ok());
  ObjectValue v;
  ASSERT_TRUE(ref.Get(1, &v).ok());
  EXPECT_EQ(Slice(v).ToString(), "v39");
}

TEST(CompareWithReferenceTest, DetectsMismatches) {
  SimulatedDisk disk;
  ReferenceExecutor ref;
  ASSERT_TRUE(ref.Apply(MakeCreate(1, "x")).ok());
  // Missing from store.
  EXPECT_TRUE(CompareWithReference(ref, disk.store()).IsCorruption());
  // Value mismatch.
  disk.store().Write(1, "y", 1);
  EXPECT_TRUE(CompareWithReference(ref, disk.store()).IsCorruption());
  // Match.
  disk.store().Write(1, "x", 1);
  EXPECT_TRUE(CompareWithReference(ref, disk.store()).ok());
  // Extra object in store.
  disk.store().Write(2, "ghost", 2);
  EXPECT_TRUE(CompareWithReference(ref, disk.store()).IsCorruption());
}

TEST(WorkloadTest, DeterministicAndWellFormed) {
  MixedWorkloadOptions opts;
  opts.seed = 123;
  MixedWorkload a(opts), b(opts);
  // SetupOps consumes generator state; both instances must run it.
  std::vector<OperationDesc> setup_a = a.SetupOps();
  std::vector<OperationDesc> setup_b = b.SetupOps();
  ASSERT_EQ(setup_a.size(), setup_b.size());
  for (size_t i = 0; i < setup_a.size(); ++i) {
    EXPECT_TRUE(setup_a[i].Validate().ok());
    EXPECT_TRUE(setup_a[i] == setup_b[i]);
  }
  for (int i = 0; i < 500; ++i) {
    OperationDesc oa = a.Next();
    OperationDesc ob = b.Next();
    EXPECT_TRUE(oa == ob) << i;
    EXPECT_TRUE(oa.Validate().ok()) << oa.DebugString();
  }
}

TEST(WorkloadTest, CoversAllOperationClasses) {
  MixedWorkloadOptions opts;
  opts.seed = 9;
  MixedWorkload w(opts);
  std::set<FuncId> funcs;
  for (int i = 0; i < 2000; ++i) funcs.insert(w.Next().func);
  EXPECT_TRUE(funcs.contains(kFuncAppExecute));
  EXPECT_TRUE(funcs.contains(kFuncAppRead));
  EXPECT_TRUE(funcs.contains(kFuncAppWrite));
  EXPECT_TRUE(funcs.contains(kFuncCopy));
  EXPECT_TRUE(funcs.contains(kFuncSortRecords));
  EXPECT_TRUE(funcs.contains(kFuncApplyDelta));
  EXPECT_TRUE(funcs.contains(kFuncSetValue));
  EXPECT_TRUE(funcs.contains(kFuncDelete));
  EXPECT_TRUE(funcs.contains(kFuncHashCombine));
}

TEST(WorkloadTest, HotSkewConcentratesPageAccess) {
  MixedWorkloadOptions opts;
  opts.seed = 5;
  opts.hot_skew_percent = 80;
  MixedWorkload w(opts);
  (void)w.SetupOps();
  size_t hot = 0, page_writes = 0;
  for (int i = 0; i < 4000; ++i) {
    OperationDesc op = w.Next();
    if (op.writes.size() == 1 && op.writes[0] >= kPageIdBase &&
        op.writes[0] < kPageIdBase + 100) {
      ++page_writes;
      if (op.writes[0] < kPageIdBase + 2) ++hot;
    }
  }
  ASSERT_GT(page_writes, 100u);
  // ~80% skew onto 2 of 12 pages.
  EXPECT_GT(hot * 100 / page_writes, 60u);

  // Skewed workloads still recover (with auto-hot detection active).
  EngineOptions eopts;
  eopts.flush_policy = FlushPolicy::kIdentityWrites;
  eopts.purge_threshold_ops = 12;
  eopts.auto_hot_write_threshold = 4;
  eopts.checkpoint_interval_ops = 50;
  CrashHarness harness(eopts, 5);
  MixedWorkload workload(opts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }
  for (int i = 0; i < 200; ++i) {
    Status st = harness.Execute(workload.Next());
    ASSERT_TRUE(st.ok() || st.IsNotFound());
  }
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

TEST(CrashHarnessTest, CrashDropsVolatileOnly) {
  CrashHarness harness(EngineOptions{}, 1);
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "durable")).ok());
  ASSERT_TRUE(harness.engine().FlushAll().ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(2, "volatile")).ok());
  harness.Crash();
  ASSERT_TRUE(harness.Recover().ok());
  // Object 1 was flushed; object 2's record was never forced.
  EXPECT_TRUE(harness.engine().Exists(1));
  EXPECT_FALSE(harness.engine().Exists(2));
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

TEST(CrashHarnessTest, TearNeverBreaksAcknowledgedForces) {
  EngineOptions opts;
  opts.purge_threshold_ops = 2;  // frequent flushes -> frequent forces
  CrashHarness harness(opts, 8);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        harness.Execute(MakePhysicalWrite(1 + (i % 4), "v")).ok());
  }
  harness.Crash(/*tear_tail=*/true);
  ASSERT_TRUE(harness.Recover().ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
}

}  // namespace
}  // namespace loglog
