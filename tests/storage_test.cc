#include <gtest/gtest.h>

#include "storage/simulated_disk.h"

namespace loglog {
namespace {

TEST(StableStoreTest, WriteReadErase) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.Write(1, "hello", 5);
  EXPECT_TRUE(store.Exists(1));
  EXPECT_EQ(store.StableVsi(1), 5u);
  StoredObject obj;
  ASSERT_TRUE(store.Read(1, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "hello");
  EXPECT_TRUE(store.Read(2, &obj).IsNotFound());
  store.Erase(1);
  EXPECT_FALSE(store.Exists(1));
  EXPECT_EQ(store.StableVsi(1), kInvalidLsn);
}

TEST(StableStoreTest, IoAccounting) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.Write(1, "abcd", 1);
  EXPECT_EQ(disk.stats().object_writes, 1u);
  EXPECT_EQ(disk.stats().object_bytes_written, 4u);
  StoredObject obj;
  ASSERT_TRUE(store.Read(1, &obj).ok());
  EXPECT_EQ(disk.stats().object_reads, 1u);
}

TEST(StableStoreTest, AtomicMultiWriteAllOrNothingSemantics) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.Write(3, "old", 1);
  std::vector<ObjectWrite> writes;
  writes.push_back({1, Slice("a"), 10, false});
  writes.push_back({2, Slice("b"), 11, false});
  writes.push_back({3, Slice(), 12, true});  // erase
  store.WriteAtomic(writes);
  EXPECT_TRUE(store.Exists(1));
  EXPECT_TRUE(store.Exists(2));
  EXPECT_FALSE(store.Exists(3));
  EXPECT_EQ(disk.stats().atomic_multi_writes, 1u);
  EXPECT_EQ(disk.stats().objects_in_atomic_writes, 3u);
}

TEST(StableStoreTest, SingletonAtomicWriteIsPlainWrite) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.WriteAtomic({{1, Slice("x"), 1, false}});
  EXPECT_EQ(disk.stats().atomic_multi_writes, 0u);
  EXPECT_EQ(disk.stats().object_writes, 1u);
}

TEST(StableStoreTest, ShadowModeBillsPerObjectPlusSwing) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.set_shadow_mode(true);
  std::vector<ObjectWrite> writes;
  writes.push_back({1, Slice("a"), 1, false});
  writes.push_back({2, Slice("b"), 2, false});
  store.WriteAtomic(writes);
  EXPECT_EQ(disk.stats().object_writes, 2u);
  EXPECT_EQ(disk.stats().shadow_pointer_swings, 1u);
  EXPECT_EQ(disk.stats().shadow_relocations, 2u);
  EXPECT_EQ(disk.stats().atomic_multi_writes, 0u);
}

TEST(StableLogDeviceTest, AppendTruncateTear) {
  SimulatedDisk disk;
  StableLogDevice& log = disk.log();
  std::vector<uint8_t> a(10, 1), b(20, 2);
  uint64_t off = 99;
  ASSERT_TRUE(log.Append(Slice(a), &off).ok());
  EXPECT_EQ(off, 0u);
  ASSERT_TRUE(log.Append(Slice(b), &off).ok());
  EXPECT_EQ(off, 10u);
  EXPECT_EQ(log.end_offset(), 30u);
  EXPECT_EQ(log.last_append_size(), 20u);
  EXPECT_EQ(log.ArchiveContents().size(), 30u);

  log.TruncatePrefix(10);
  EXPECT_EQ(log.start_offset(), 10u);
  EXPECT_EQ(log.retained_bytes(), 20u);
  EXPECT_EQ(log.ArchiveContents().size(), 30u);  // archive unaffected

  log.TearTail(5);
  EXPECT_EQ(log.retained_bytes(), 15u);
  EXPECT_EQ(log.ArchiveContents().size(), 25u);  // archive trimmed too
}

TEST(IoStatsTest, DeltaSubtracts) {
  IoStats a;
  a.object_writes = 10;
  a.log_bytes = 100;
  IoStats b = a;
  b.object_writes = 15;
  b.log_bytes = 180;
  IoStats d = b.Delta(a);
  EXPECT_EQ(d.object_writes, 5u);
  EXPECT_EQ(d.log_bytes, 80u);
  EXPECT_FALSE(a.ToString().empty());
}

}  // namespace
}  // namespace loglog
