#include <gtest/gtest.h>

#include "obs/json.h"
#include "storage/disk_image.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

TEST(StableStoreTest, WriteReadErase) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.Write(1, "hello", 5);
  EXPECT_TRUE(store.Exists(1));
  EXPECT_EQ(store.StableVsi(1), 5u);
  StoredObject obj;
  ASSERT_TRUE(store.Read(1, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "hello");
  EXPECT_TRUE(store.Read(2, &obj).IsNotFound());
  store.Erase(1);
  EXPECT_FALSE(store.Exists(1));
  EXPECT_EQ(store.StableVsi(1), kInvalidLsn);
}

TEST(StableStoreTest, IoAccounting) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.Write(1, "abcd", 1);
  EXPECT_EQ(disk.stats().object_writes, 1u);
  EXPECT_EQ(disk.stats().object_bytes_written, 4u);
  StoredObject obj;
  ASSERT_TRUE(store.Read(1, &obj).ok());
  EXPECT_EQ(disk.stats().object_reads, 1u);
}

TEST(StableStoreTest, AtomicMultiWriteAllOrNothingSemantics) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.Write(3, "old", 1);
  std::vector<ObjectWrite> writes;
  writes.push_back({1, Slice("a"), 10, false});
  writes.push_back({2, Slice("b"), 11, false});
  writes.push_back({3, Slice(), 12, true});  // erase
  store.WriteAtomic(writes);
  EXPECT_TRUE(store.Exists(1));
  EXPECT_TRUE(store.Exists(2));
  EXPECT_FALSE(store.Exists(3));
  EXPECT_EQ(disk.stats().atomic_multi_writes, 1u);
  EXPECT_EQ(disk.stats().objects_in_atomic_writes, 3u);
}

TEST(StableStoreTest, SingletonAtomicWriteIsPlainWrite) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.WriteAtomic({{1, Slice("x"), 1, false}});
  EXPECT_EQ(disk.stats().atomic_multi_writes, 0u);
  EXPECT_EQ(disk.stats().object_writes, 1u);
}

TEST(StableStoreTest, ShadowModeBillsPerObjectPlusSwing) {
  SimulatedDisk disk;
  StableStore& store = disk.store();
  store.set_shadow_mode(true);
  std::vector<ObjectWrite> writes;
  writes.push_back({1, Slice("a"), 1, false});
  writes.push_back({2, Slice("b"), 2, false});
  store.WriteAtomic(writes);
  EXPECT_EQ(disk.stats().object_writes, 2u);
  EXPECT_EQ(disk.stats().shadow_pointer_swings, 1u);
  EXPECT_EQ(disk.stats().shadow_relocations, 2u);
  EXPECT_EQ(disk.stats().atomic_multi_writes, 0u);
}

TEST(StableLogDeviceTest, AppendTruncateTear) {
  SimulatedDisk disk;
  StableLogDevice& log = disk.log();
  std::vector<uint8_t> a(10, 1), b(20, 2);
  uint64_t off = 99;
  ASSERT_TRUE(log.Append(Slice(a), &off).ok());
  EXPECT_EQ(off, 0u);
  ASSERT_TRUE(log.Append(Slice(b), &off).ok());
  EXPECT_EQ(off, 10u);
  EXPECT_EQ(log.end_offset(), 30u);
  EXPECT_EQ(log.last_append_size(), 20u);
  EXPECT_EQ(log.ArchiveContents().size(), 30u);

  log.TruncatePrefix(10);
  EXPECT_EQ(log.start_offset(), 10u);
  EXPECT_EQ(log.retained_bytes(), 20u);
  EXPECT_EQ(log.reclaimed_bytes(), 10u);  // hot bytes actually released
  // The truncated prefix spilled cold; full history is still visible.
  EXPECT_EQ(log.cold_tier().total_bytes(), 10u);
  EXPECT_EQ(log.ArchiveContents().size(), 30u);

  // Stable reads fall through the truncation horizon to the cold tier.
  std::vector<uint8_t> cold_read;
  ASSERT_TRUE(log.ReadStable(0, 10, &cold_read).ok());
  EXPECT_EQ(cold_read, std::vector<uint8_t>(10, 1));
  std::vector<uint8_t> straddle;
  ASSERT_TRUE(log.ReadStable(5, 10, &straddle).ok());
  std::vector<uint8_t> expect_straddle(5, 1);
  expect_straddle.insert(expect_straddle.end(), 5, 2);
  EXPECT_EQ(straddle, expect_straddle);

  log.TearTail(5);
  EXPECT_EQ(log.retained_bytes(), 15u);
  EXPECT_EQ(log.ArchiveContents().size(), 25u);  // hot tail trimmed
  EXPECT_EQ(log.cold_tier().total_bytes(), 10u);  // cold never tears
}

TEST(IoStatsTest, DeltaSubtracts) {
  IoStats a;
  a.object_writes = 10;
  a.log_bytes = 100;
  IoStats b = a;
  b.object_writes = 15;
  b.log_bytes = 180;
  IoStats d = b.Delta(a);
  EXPECT_EQ(d.object_writes, 5u);
  EXPECT_EQ(d.log_bytes, 80u);
  EXPECT_FALSE(a.ToString().empty());
}

TEST(IoStatsTest, DeltaToStringRoundTripAllFields) {
  // Every field participates in Delta and shows up in ToString/ToJson:
  // stats.Delta(zero) must reproduce stats exactly, field for field, and
  // the two renderings of equal stats must match byte for byte. A field
  // added to the struct but forgotten in Delta or the renderings breaks
  // one of these.
  IoStats stats;
  stats.object_writes = 1;
  stats.atomic_multi_writes = 2;
  stats.objects_in_atomic_writes = 3;
  stats.object_reads = 4;
  stats.object_bytes_written = 5;
  stats.log_forces = 6;
  stats.log_bytes = 7;
  stats.shadow_pointer_swings = 8;
  stats.shadow_relocations = 9;
  stats.quiesce_events = 10;
  stats.io_retries = 11;

  IoStats round = stats.Delta(IoStats{});
  EXPECT_EQ(round.object_writes, stats.object_writes);
  EXPECT_EQ(round.atomic_multi_writes, stats.atomic_multi_writes);
  EXPECT_EQ(round.objects_in_atomic_writes, stats.objects_in_atomic_writes);
  EXPECT_EQ(round.object_reads, stats.object_reads);
  EXPECT_EQ(round.object_bytes_written, stats.object_bytes_written);
  EXPECT_EQ(round.log_forces, stats.log_forces);
  EXPECT_EQ(round.log_bytes, stats.log_bytes);
  EXPECT_EQ(round.shadow_pointer_swings, stats.shadow_pointer_swings);
  EXPECT_EQ(round.shadow_relocations, stats.shadow_relocations);
  EXPECT_EQ(round.quiesce_events, stats.quiesce_events);
  EXPECT_EQ(round.io_retries, stats.io_retries);
  EXPECT_EQ(round.ToString(), stats.ToString());
  EXPECT_EQ(round.ToJson(), stats.ToJson());

  // Delta of a snapshot against itself is all-zero in both renderings.
  EXPECT_EQ(stats.Delta(stats).ToString(), IoStats{}.ToString());
  EXPECT_TRUE(JsonSyntaxCheck(Slice(stats.ToJson())).ok());
}

TEST(DiskImageTest, RoundTripsStoreLogAndStats) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.store().Write(1, "alpha", 3).ok());
  ASSERT_TRUE(disk.store().Write(2, "beta", 7).ok());
  std::vector<uint8_t> a(40, 1), b(24, 2);
  ASSERT_TRUE(disk.log().Append(Slice(a)).ok());
  ASSERT_TRUE(disk.log().Append(Slice(b)).ok());
  disk.log().TruncatePrefix(40);
  StoredObject read_back;
  ASSERT_TRUE(disk.store().Read(1, &read_back).ok());  // bills a read

  std::vector<uint8_t> image;
  SaveDiskImage(disk, &image);

  SimulatedDisk restored;
  ASSERT_TRUE(LoadDiskImage(Slice(image), &restored).ok());

  // Before touching the restored disk (every Read bills I/O): the saved
  // counters replaced the restore traffic's billing exactly, and a second
  // save is byte-identical.
  EXPECT_EQ(restored.stats().ToString(), disk.stats().ToString());
  std::vector<uint8_t> image2;
  SaveDiskImage(restored, &image2);
  EXPECT_EQ(Slice(image2), Slice(image));

  EXPECT_EQ(restored.store().object_count(), 2u);
  ASSERT_TRUE(restored.store().Read(1, &read_back).ok());
  EXPECT_EQ(Slice(read_back.value).ToString(), "alpha");
  EXPECT_EQ(read_back.vsi, 3u);
  EXPECT_EQ(restored.log().start_offset(), 40u);
  EXPECT_EQ(restored.log().retained_bytes(), 24u);
  EXPECT_EQ(restored.log().ArchiveContents(), disk.log().ArchiveContents());
}

TEST(DiskImageTest, PreservesStoredCorruption) {
  // A saved image must reproduce the media exactly — including an object
  // whose stored CRC no longer matches its bytes.
  SimulatedDisk disk;
  ASSERT_TRUE(disk.store().Write(9, "fragile", 2).ok());
  disk.fault_injector().Arm(fault::kStoreWrite,
                            FaultSpec::BitFlipOnce(/*seed=*/7));
  ASSERT_TRUE(disk.store().Write(10, "rotten", 4).ok());
  ASSERT_EQ(disk.store().CorruptObjects(), std::vector<ObjectId>{10});

  std::vector<uint8_t> image;
  SaveDiskImage(disk, &image);
  SimulatedDisk restored;
  ASSERT_TRUE(LoadDiskImage(Slice(image), &restored).ok());
  EXPECT_EQ(restored.store().CorruptObjects(), std::vector<ObjectId>{10});
  StoredObject obj;
  EXPECT_TRUE(restored.store().Read(10, &obj).IsCorruption());
}

TEST(DiskImageTest, RejectsDamage) {
  SimulatedDisk disk;
  ASSERT_TRUE(disk.store().Write(1, "x", 1).ok());
  std::vector<uint8_t> image;
  SaveDiskImage(disk, &image);

  SimulatedDisk fresh;
  EXPECT_TRUE(LoadDiskImage(Slice(image.data(), 5), &fresh).IsCorruption());

  std::vector<uint8_t> bad_magic = image;
  bad_magic[0] ^= 0xff;
  EXPECT_TRUE(LoadDiskImage(Slice(bad_magic), &fresh).IsCorruption());

  std::vector<uint8_t> bit_flip = image;
  bit_flip[image.size() / 2] ^= 0x10;
  EXPECT_TRUE(LoadDiskImage(Slice(bit_flip), &fresh).IsCorruption());
}

}  // namespace
}  // namespace loglog
