#include <gtest/gtest.h>

#include "sim/crash_harness.h"
#include "sim/workload.h"

namespace loglog {
namespace {

// The harshest configuration matrix: checkpointing + log truncation +
// torn tails + cache pressure + repeated crashes, all at once, across
// representative policy corners. Complements the broad crash matrix.
struct StressParam {
  GraphKind graph;
  FlushPolicy flush;
  RedoTestKind redo;
  uint64_t seed;
};

std::string StressName(const testing::TestParamInfo<StressParam>& info) {
  const StressParam& p = info.param;
  std::string s = p.graph == GraphKind::kRefined ? "RW" : "W";
  s += p.flush == FlushPolicy::kIdentityWrites
           ? "Ident"
           : (p.flush == FlushPolicy::kFlushTransaction ? "Ftxn" : "Native");
  s += p.redo == RedoTestKind::kRsiFixpoint
           ? "Fix"
           : (p.redo == RedoTestKind::kRsiGeneralized ? "Rsi" : "Vsi");
  s += "S" + std::to_string(p.seed);
  return s;
}

class StressMatrixTest : public testing::TestWithParam<StressParam> {};

TEST_P(StressMatrixTest, LongRunWithEverythingEnabled) {
  const StressParam& p = GetParam();
  EngineOptions opts;
  opts.graph_kind = p.graph;
  opts.flush_policy = p.flush;
  opts.redo_test = p.redo;
  opts.purge_threshold_ops = 16;
  opts.checkpoint_interval_ops = 45;
  opts.cache_capacity_objects = 24;

  CrashHarness harness(opts, p.seed);
  MixedWorkloadOptions wopts;
  wopts.seed = p.seed * 104729 + 11;
  wopts.w_temp_create = 3;
  wopts.w_temp_delete = 3;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(harness.Execute(op).ok());
  }

  for (int round = 0; round < 6; ++round) {
    int ops = 60 + static_cast<int>(harness.rng().Uniform(120));
    for (int i = 0; i < ops; ++i) {
      Status st = harness.Execute(workload.Next());
      ASSERT_TRUE(st.ok() || st.IsNotFound()) << st.ToString();
    }
    bool tear = harness.rng().OneIn(2);
    harness.Crash(tear);
    RecoveryStats stats;
    ASSERT_TRUE(harness.Recover(&stats).ok());
    Status verdict = harness.VerifyAgainstReference();
    ASSERT_TRUE(verdict.ok())
        << "round " << round << " tear=" << tear << ": "
        << verdict.ToString() << "\n"
        << stats.ToString();
    ASSERT_TRUE(harness.engine().cache().CheckInvariants().ok());
  }
}

std::vector<StressParam> StressMatrix() {
  std::vector<StressParam> out;
  for (GraphKind gk : {GraphKind::kRefined, GraphKind::kW}) {
    for (FlushPolicy fp :
         {FlushPolicy::kIdentityWrites, FlushPolicy::kNativeAtomic,
          FlushPolicy::kFlushTransaction}) {
      for (RedoTestKind rt :
           {RedoTestKind::kVsi, RedoTestKind::kRsiGeneralized,
            RedoTestKind::kRsiFixpoint}) {
        for (uint64_t seed : {7u, 8u, 9u}) {
          out.push_back({gk, fp, rt, seed});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Corners, StressMatrixTest,
                         testing::ValuesIn(StressMatrix()), StressName);

}  // namespace
}  // namespace loglog
