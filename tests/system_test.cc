#include <gtest/gtest.h>

#include "domains/app/recoverable_app.h"
#include "domains/btree/btree.h"
#include "domains/dataflow/dataflow.h"
#include "domains/fs/file_system.h"
#include "domains/queue/recoverable_queue.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

// The whole point of the paper: ONE recovery mechanism serves every
// domain. Five domains share a single engine (disjoint object-id
// ranges), interleave work, crash, and all recover through the same
// analysis+redo pass with no domain-specific recovery code.
TEST(SystemTest, FiveDomainsOneRecovery) {
  EngineOptions opts;
  opts.purge_threshold_ops = 24;
  opts.checkpoint_interval_ops = 90;
  CrashHarness harness(opts, 2026);
  Random rng(2026);

  std::map<uint64_t, std::string> btree_model;
  int64_t df_in1 = 3, df_in2 = 4;
  size_t queue_expected = 0;

  {
    RecoveryEngine& engine = harness.engine();

    FileSystem fs(&engine);
    ASSERT_TRUE(fs.Mount().ok());
    ASSERT_TRUE(fs.Create("input.dat", Slice(rng.Bytes(2048))).ok());

    RecoverableApp app(&engine, 50'000, 256);
    ASSERT_TRUE(app.Init(1).ok());

    RecoverableQueue queue(&engine);
    ASSERT_TRUE(queue.Open().ok());

    BtreeOptions bopts;
    bopts.max_page_bytes = 256;
    Btree tree(&engine, bopts);
    ASSERT_TRUE(tree.Open().ok());

    DataflowGraph graph(&engine);
    ASSERT_TRUE(graph.Open().ok());
    ASSERT_TRUE(graph.DefineInput(1, df_in1).ok());
    ASSERT_TRUE(graph.DefineInput(2, df_in2).ok());
    ASSERT_TRUE(graph.DefineDerived(9, CellFormula::kSum, {1, 2}).ok());

    for (int round = 0; round < 40; ++round) {
      // Application consumes the file and emits into the queue.
      ASSERT_TRUE(app.Absorb(fs.Resolve("input.dat")).ok());
      ASSERT_TRUE(app.Step(round).ok());
      ASSERT_TRUE(queue.EnqueueFromApp(app.id(), 512, round).ok());
      ++queue_expected;
      if (round % 3 == 0 && !queue.empty()) {
        ObjectValue msg;
        ASSERT_TRUE(queue.Dequeue(&msg).ok());
        --queue_expected;
      }
      // Index some keys.
      uint64_t key = rng.Uniform(10'000);
      std::string value = "r" + std::to_string(round);
      ASSERT_TRUE(tree.Insert(key, value).ok());
      btree_model[key] = value;
      // Tweak the dataflow inputs.
      if (round % 5 == 0) {
        df_in1 = round;
        ASSERT_TRUE(graph.SetInput(1, df_in1).ok());
      }
      // Churn files.
      if (round % 7 == 0) {
        ASSERT_TRUE(fs.Copy("mirror.dat", "input.dat").ok());
      }
    }
    ASSERT_TRUE(engine.log().ForceAll().ok());
  }

  harness.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());

  RecoveryEngine& engine = harness.engine();
  FileSystem fs(&engine);
  ASSERT_TRUE(fs.Mount().ok());
  EXPECT_TRUE(fs.Exists("input.dat"));
  EXPECT_TRUE(fs.Exists("mirror.dat"));
  ObjectValue a, b;
  ASSERT_TRUE(fs.ReadFile("input.dat", &a).ok());
  ASSERT_TRUE(fs.ReadFile("mirror.dat", &b).ok());
  EXPECT_EQ(a, b);

  RecoverableQueue queue(&engine);
  ASSERT_TRUE(queue.Open().ok());
  EXPECT_EQ(queue.size(), queue_expected);

  BtreeOptions bopts;
  bopts.max_page_bytes = 256;
  Btree tree(&engine, bopts);
  ASSERT_TRUE(tree.Open().ok());
  ASSERT_EQ(tree.Validate().ToString(), "OK");
  for (const auto& [key, value] : btree_model) {
    std::vector<uint8_t> got;
    ASSERT_TRUE(tree.Get(key, &got).ok()) << key;
    EXPECT_EQ(Slice(got).ToString(), value);
  }

  DataflowGraph graph(&engine);
  ASSERT_TRUE(graph.Open().ok());
  ASSERT_TRUE(graph.Audit().ok());
  int64_t sum;
  ASSERT_TRUE(graph.Value(9, &sum).ok());
  EXPECT_EQ(sum, df_in1 + df_in2);
}

}  // namespace
}  // namespace loglog
