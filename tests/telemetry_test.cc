// Telemetry exporter, Prometheus rendering, the health ledger, and the
// recovery progress gauges — including the acceptance property that a
// clean full redo finishes with records_total == records_done ==
// records_redone exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/recovery_engine.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  if (f != nullptr) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  return bytes;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

TEST(PrometheusTextTest, RendersCountersGaugesAndSummaries) {
  MetricsRegistry reg;
  reg.GetCounter("wal.appends", {{"policy", "group"}})->Inc(42);
  reg.GetGauge("ship.lag_records")->Set(-3);
  HistogramMetric* h = reg.GetHistogram("wal.force.wait_us");
  for (int i = 1; i <= 100; ++i) h->Observe(i);
  HealthRegistry::Global().Reset();
  HealthRegistry::Global().Set(health::kWalDevice, HealthState::kDegraded,
                               "unit test");
  const std::string text = PrometheusText(reg.Snapshot());
  HealthRegistry::Global().Reset();

  // Names gain the loglog_ prefix and dots become underscores; labels
  // survive as a {k="v"} block.
  EXPECT_NE(text.find("loglog_wal_appends{policy=\"group\"} 42"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("loglog_ship_lag_records -3"), std::string::npos);
  // Histograms render as summaries: three quantile series + count + sum.
  EXPECT_NE(text.find("loglog_wal_force_wait_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("loglog_wal_force_wait_us{quantile=\"0.9\"}"),
            std::string::npos);
  EXPECT_NE(text.find("loglog_wal_force_wait_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("loglog_wal_force_wait_us_count 100"),
            std::string::npos);
  EXPECT_NE(text.find("loglog_wal_force_wait_us_sum 5050"),
            std::string::npos);
  // The health ledger is appended as a gauge per subsystem.
  EXPECT_NE(text.find("loglog_health_state{subsystem=\"wal.device\"} 1"),
            std::string::npos)
      << text;
  // Every sample line ends in a value; no raw dots leak into names.
  for (const std::string& line : Lines(text)) {
    if (line.rfind("# ", 0) == 0) continue;
    EXPECT_EQ(line.rfind("loglog_", 0), 0u) << line;
    EXPECT_EQ(line.substr(0, line.find('{')).find('.'), std::string::npos)
        << line;
  }
}

TEST(TelemetryTest, SampleJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("redo.ops")->Inc(7);
  reg.GetHistogram("redo.batch_us")->Observe(12);
  const std::string json = TelemetrySampleJson(reg.Snapshot(), 123456);
  ASSERT_TRUE(JsonSyntaxCheck(Slice(json)).ok()) << json;
  EXPECT_NE(json.find("\"ts_us\""), std::string::npos);
  EXPECT_NE(json.find("redo.ops"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos)
      << "JSONL records must be single-line";
}

TEST(TelemetryTest, ExporterAppendsJsonlAndRewritesProm) {
  const std::string jsonl = testing::TempDir() + "/telemetry_test.jsonl";
  const std::string prom = testing::TempDir() + "/telemetry_test.prom";
  std::remove(jsonl.c_str());
  MetricsRegistry reg;
  reg.GetCounter("obs.test.counter")->Inc(1);
  TelemetryExporter exporter({jsonl, prom, &reg});
  ASSERT_TRUE(exporter.Sample().ok());
  reg.GetCounter("obs.test.counter")->Inc(1);
  ASSERT_TRUE(exporter.Sample().ok());
  EXPECT_EQ(exporter.samples_taken(), 2u);

  // The JSONL file is append-only: one well-formed record per sample.
  std::vector<std::string> lines = Lines(ReadFileOrDie(jsonl));
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonSyntaxCheck(Slice(line)).ok()) << line;
  }
  EXPECT_NE(lines[0].find("\"obs.test.counter\":1"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"obs.test.counter\":2"), std::string::npos)
      << lines[1];

  // The prom file is rewritten, not appended: the counter appears once,
  // with its latest value.
  const std::string exposition = ReadFileOrDie(prom);
  const std::string sample_line = "loglog_obs_test_counter 2";
  const size_t first = exposition.find(sample_line);
  ASSERT_NE(first, std::string::npos) << exposition;
  EXPECT_EQ(exposition.find(sample_line, first + 1), std::string::npos);
  EXPECT_EQ(exposition.find("loglog_obs_test_counter 1"), std::string::npos);

  std::remove(jsonl.c_str());
  std::remove(prom.c_str());
}

TEST(HealthRegistryTest, TracksTransitionsAndWorstState) {
  HealthRegistry& reg = HealthRegistry::Global();
  reg.Reset();
  EXPECT_EQ(reg.Worst(), HealthState::kOk);
  EXPECT_EQ(reg.Get(health::kWalDevice), HealthState::kOk)
      << "unreported subsystems default to ok";

  reg.Set(health::kWalDevice, HealthState::kOk, "fresh");
  reg.Set(health::kReplicationChannel, HealthState::kDegraded, "nak");
  EXPECT_EQ(reg.Worst(), HealthState::kDegraded);
  reg.Set(health::kWalDevice, HealthState::kFailing, "poisoned");
  EXPECT_EQ(reg.Worst(), HealthState::kFailing);
  EXPECT_EQ(reg.Get(health::kWalDevice), HealthState::kFailing);

  // Repeating a state only refreshes the detail; transitions count real
  // changes (ok -> failing -> ok = 2 after the initial report).
  reg.Set(health::kWalDevice, HealthState::kFailing, "still poisoned");
  reg.Set(health::kWalDevice, HealthState::kOk, "recovered");
  auto snapshot = reg.Snapshot();
  const auto& wal = snapshot.at(std::string(health::kWalDevice));
  EXPECT_EQ(wal.state, HealthState::kOk);
  EXPECT_EQ(wal.detail, "recovered");
  EXPECT_EQ(wal.transitions, 2u);
  EXPECT_EQ(reg.Worst(), HealthState::kDegraded) << "ship channel still nak";

  ASSERT_TRUE(JsonSyntaxCheck(Slice(reg.ToJson())).ok());
  EXPECT_NE(reg.ToJson().find("\"ship.channel\""), std::string::npos);
  EXPECT_NE(reg.ToString().find("wal.device: ok (recovered)"),
            std::string::npos)
      << reg.ToString();

  reg.Reset();
  EXPECT_EQ(reg.Worst(), HealthState::kOk);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(HealthRegistryTest, StateNamesAreStable) {
  EXPECT_STREQ(HealthStateName(HealthState::kOk), "ok");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(HealthStateName(HealthState::kFailing), "failing");
}

// The acceptance property for the progress probes: a clean full redo
// (every logged op is durable, nothing installed) ends with the gauges
// reading exactly records_total == records_done == records_redone == N.
void RunProgressGaugeCheck(int redo_threads) {
  constexpr int kOps = 30;  // below purge_threshold_ops: nothing installs
  SimulatedDisk disk;
  {
    RecoveryEngine engine(EngineOptions{}, &disk);
    for (int i = 1; i <= kOps; ++i) {
      ASSERT_TRUE(
          engine.Execute(MakeCreate(static_cast<ObjectId>(i), "v")).ok());
    }
    ASSERT_TRUE(engine.log().ForceAll().ok());
    // Drop the engine without flushing: the stable store saw nothing.
  }
  EngineOptions opts;
  opts.recovery.redo_threads = redo_threads;
  RecoveryEngine engine(opts, &disk);
  RecoveryStats stats;
  ASSERT_TRUE(engine.Recover(&stats).ok());
  EXPECT_EQ(stats.ops_considered, static_cast<uint64_t>(kOps));
  EXPECT_EQ(stats.ops_redone, static_cast<uint64_t>(kOps));

  MetricsRegistry& reg = MetricsRegistry::Global();
  const int64_t total =
      reg.GetGauge(metric::kRecoveryProgressRecordsTotal)->value();
  const int64_t done =
      reg.GetGauge(metric::kRecoveryProgressRecordsDone)->value();
  const int64_t redone =
      reg.GetGauge(metric::kRecoveryProgressRecordsRedone)->value();
  EXPECT_EQ(total, kOps);
  EXPECT_EQ(done, kOps);
  EXPECT_EQ(redone, kOps);
  EXPECT_GT(reg.GetGauge(metric::kRecoveryProgressBytes)->value(), 0);
  // And recovery reported itself healthy.
  EXPECT_EQ(HealthRegistry::Global().Get(health::kRecovery),
            HealthState::kOk);
}

TEST(ProgressGaugeTest, CleanFullRedoIsExactSerial) {
  RunProgressGaugeCheck(1);
}

TEST(ProgressGaugeTest, CleanFullRedoIsExactParallel) {
  RunProgressGaugeCheck(4);
}

}  // namespace
}  // namespace loglog
