#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ops/op_builder.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

// Where, within the final (in-flight) log force, the tear lands.
enum class TearKind {
  kOneByte,        // one byte missing: the last frame is torn
  kHeaderBoundary, // everything but one 8-byte frame header survives
  kFullLastForce,  // the entire force is lost: a *clean* shorter log
};

const char* TearKindName(TearKind k) {
  switch (k) {
    case TearKind::kOneByte:
      return "OneByte";
    case TearKind::kHeaderBoundary:
      return "HeaderBoundary";
    case TearKind::kFullLastForce:
      return "FullLastForce";
  }
  return "Unknown";
}

const char* FlushPolicyName(FlushPolicy p) {
  switch (p) {
    case FlushPolicy::kNativeAtomic:
      return "NativeAtomic";
    case FlushPolicy::kIdentityWrites:
      return "IdentityWrites";
    case FlushPolicy::kFlushTransaction:
      return "FlushTransaction";
    case FlushPolicy::kShadow:
      return "Shadow";
  }
  return "Unknown";
}

// A crash tears the final log force at a deliberately awkward byte
// position. Recovery must (a) classify the log tail correctly — torn
// only when a partial frame actually remains — and (b) reconstruct a
// state equivalent to the reference replay of whatever survived,
// whichever flush policy installed the pre-crash state.
class TornTailMatrixTest
    : public testing::TestWithParam<std::tuple<FlushPolicy, TearKind>> {};

TEST_P(TornTailMatrixTest, RecoveryClassifiesAndTrimsTornTail) {
  const auto [policy, kind] = GetParam();
  EngineOptions opts;
  opts.flush_policy = policy;
  opts.purge_threshold_ops = 0;  // no automatic purges mid-test
  CrashHarness harness(opts, 311);

  // Phase 1: durable state installed through the policy under test.
  ASSERT_TRUE(harness.Execute(MakeCreate(1, "phase-one-a")).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(2, "phase-one-b")).ok());
  ASSERT_TRUE(harness.Execute(MakeCopy(3, 1)).ok());
  ASSERT_TRUE(harness.engine().FlushAll().ok());

  // Phase 2: operations whose records ride the final force and whose
  // effects were never flushed — redo fodder, or (for a full-force
  // tear) history that legitimately never happened.
  ASSERT_TRUE(harness.Execute(MakeAppend(1, "-phase-two")).ok());
  ASSERT_TRUE(harness.Execute(MakeCopy(4, 2)).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(5, "phase-two-only")).ok());
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());

  harness.Crash();  // volatile state dies; the tear is applied below

  StableLogDevice& log = harness.disk().log();
  const uint64_t last = log.last_append_size();
  ASSERT_GT(last, 8u) << "final force must exceed one frame header";
  switch (kind) {
    case TearKind::kOneByte:
      log.TearTail(1);
      break;
    case TearKind::kHeaderBoundary:
      // Leave exactly one frame header and no payload behind.
      log.TearTail(last - 8);
      break;
    case TearKind::kFullLastForce:
      log.TearTail(last);
      break;
  }

  RecoveryStats stats;
  Status st = harness.Recover(&stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // A tear inside the force leaves a partial frame → torn tail. Tearing
  // the force off whole leaves a clean (shorter) log → not torn.
  EXPECT_EQ(stats.torn_tail, kind != TearKind::kFullLastForce)
      << stats.ToString();

  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  ASSERT_TRUE(harness.engine().cache().CheckInvariants().ok());
  // Phase-1 state must survive every tear position.
  EXPECT_TRUE(harness.engine().Exists(1));
  EXPECT_TRUE(harness.engine().Exists(2));
  EXPECT_TRUE(harness.engine().Exists(3));
  if (kind == TearKind::kFullLastForce) {
    // The whole force is gone: phase 2 never happened.
    EXPECT_FALSE(harness.engine().Exists(5));
    ObjectValue v;
    ASSERT_TRUE(harness.engine().Read(1, &v).ok());
    EXPECT_EQ(Slice(v).ToString(), "phase-one-a");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TornTailMatrixTest,
    testing::Combine(testing::Values(FlushPolicy::kNativeAtomic,
                                     FlushPolicy::kIdentityWrites,
                                     FlushPolicy::kFlushTransaction,
                                     FlushPolicy::kShadow),
                     testing::Values(TearKind::kOneByte,
                                     TearKind::kHeaderBoundary,
                                     TearKind::kFullLastForce)),
    [](const testing::TestParamInfo<TornTailMatrixTest::ParamType>& info) {
      return std::string(FlushPolicyName(std::get<0>(info.param))) +
             TearKindName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace loglog
