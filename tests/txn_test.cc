#include <gtest/gtest.h>

#include <string>

#include "common/coding.h"
#include "domains/btree/btree.h"
#include "domains/btree/btree_page.h"
#include "domains/queue/recoverable_queue.h"
#include "engine/recovery_engine.h"
#include "engine/txn_manager.h"
#include "fault/fault_injector.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

std::string AsString(const ObjectValue& v) {
  return std::string(v.begin(), v.end());
}

std::string ReadString(RecoveryEngine* engine, ObjectId id) {
  ObjectValue v;
  Status st = engine->Read(id, &v);
  return st.ok() ? AsString(v) : "<" + st.ToString() + ">";
}

TEST(TxnTest, CommitIsDurableAcrossCrash) {
  CrashHarness h{EngineOptions{}};
  ASSERT_TRUE(h.Execute(MakeCreate(1, "base")).ok());
  {
    TxnManager tm(&h.engine());
    TxnId id;
    ASSERT_TRUE(tm.Begin(&id).ok());
    ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "updated")).ok());
    ASSERT_TRUE(tm.Execute(id, MakeCreate(2, "fresh")).ok());
    ASSERT_TRUE(tm.Commit(id).ok());
  }
  // Commit forced the log: the whole transaction survives a crash that
  // loses every unforced byte.
  h.Crash();
  ASSERT_TRUE(h.Recover().ok());
  EXPECT_EQ(ReadString(&h.engine(), 1), "updated");
  EXPECT_EQ(ReadString(&h.engine(), 2), "fresh");
  EXPECT_TRUE(h.VerifyAgainstReference().ok());
}

TEST(TxnTest, RollbackCompensatesEveryEffect) {
  CrashHarness h{EngineOptions{}};
  ASSERT_TRUE(h.Execute(MakeCreate(1, "base")).ok());
  TxnManager tm(&h.engine());
  TxnId id;
  ASSERT_TRUE(tm.Begin(&id).ok());
  ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "dirty")).ok());
  ASSERT_TRUE(tm.Execute(id, MakeCreate(2, "temp")).ok());
  ASSERT_TRUE(tm.Rollback(id).ok());

  EXPECT_EQ(ReadString(&h.engine(), 1), "base");
  EXPECT_FALSE(h.engine().Exists(2));
  // The overwrite restores a before-image; the create is undone by its
  // structural logical inverse (delete).
  EXPECT_GE(tm.undo_stats().image_restores, 1u);
  EXPECT_GE(tm.undo_stats().logical_inverses, 1u);
  EXPECT_EQ(tm.undo_stats().clrs_logged, 2u);

  // Compensation is ordinary logged history: redo repeats it verbatim.
  ASSERT_TRUE(h.engine().log().ForceAll().ok());
  h.Crash();
  ASSERT_TRUE(h.Recover().ok());
  EXPECT_EQ(ReadString(&h.engine(), 1), "base");
  EXPECT_FALSE(h.engine().Exists(2));
  EXPECT_TRUE(h.VerifyAgainstReference().ok());
}

TEST(TxnTest, AbandonedTransactionRolledBackAsLoser) {
  CrashHarness h{EngineOptions{}};
  ASSERT_TRUE(h.Execute(MakeCreate(1, "base")).ok());
  {
    TxnManager tm(&h.engine());
    TxnId id;
    ASSERT_TRUE(tm.Begin(&id).ok());
    ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "dirty")).ok());
    ASSERT_TRUE(h.engine().log().ForceAll().ok());
    // The manager dies with the transaction open — its stable records
    // make it a loser for the next recovery.
  }
  h.Crash();
  RecoveryStats rs;
  ASSERT_TRUE(h.Recover(&rs).ok());
  EXPECT_EQ(rs.loser_txns, 1u);
  EXPECT_GE(rs.loser_clrs, 1u);
  EXPECT_EQ(ReadString(&h.engine(), 1), "base");
  EXPECT_TRUE(h.VerifyAgainstReference().ok());
}

TEST(TxnTest, RollbackCrashSweepResumesAtEveryDepth) {
  // Crash the rollback between every pair of compensation records (depth
  // 1, 2, ...), force the partial CLR trail stable, and let recovery
  // finish from the last stable CLR's undo-next. Every depth must land in
  // the identical pre-transaction state, nothing compensated twice.
  for (uint64_t depth = 1; depth <= 8; ++depth) {
    SCOPED_TRACE(depth);
    CrashHarness h{EngineOptions{}};
    ASSERT_TRUE(h.Execute(MakeCreate(1, "one")).ok());
    ASSERT_TRUE(h.Execute(MakeCreate(2, "two")).ok());
    TxnManager tm(&h.engine());
    TxnId id;
    ASSERT_TRUE(tm.Begin(&id).ok());
    ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "d1")).ok());
    ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(2, "d2")).ok());
    ASSERT_TRUE(tm.Execute(id, MakeCreate(3, "d3")).ok());
    ASSERT_TRUE(h.engine().log().ForceAll().ok());

    FaultInjector& inj = h.disk().fault_injector();
    inj.Arm(fault::kTxnRollbackCrash, FaultSpec::CrashOnHit(depth));
    Status st = tm.Rollback(id);
    inj.DisarmAll();
    if (st.ok()) {
      // Depth beyond the CLR count: the rollback ran to completion.
      EXPECT_GT(depth, 3u);
    } else {
      EXPECT_TRUE(st.IsAborted()) << st.ToString();
      // Whatever CLRs made it out become stable — recovery must resume
      // after them, not redo them.
      ASSERT_TRUE(h.engine().log().ForceAll().ok());
      h.Crash();
      RecoveryStats rs;
      ASSERT_TRUE(h.Recover(&rs).ok());
      EXPECT_EQ(rs.loser_txns, 1u);
      // Runtime CLRs + loser CLRs together cover each of the three
      // forward operations exactly once.
      EXPECT_EQ(tm.undo_stats().clrs_logged + rs.loser_clrs, 3u);
    }
    EXPECT_EQ(ReadString(&h.engine(), 1), "one");
    EXPECT_EQ(ReadString(&h.engine(), 2), "two");
    EXPECT_FALSE(h.engine().Exists(3));
    EXPECT_TRUE(h.VerifyAgainstReference().ok());
    if (st.ok()) break;
  }
}

TEST(TxnTest, CrashDuringRecoveryRollbackIsRetriable) {
  CrashHarness h{EngineOptions{}};
  ASSERT_TRUE(h.Execute(MakeCreate(1, "base")).ok());
  {
    TxnManager tm(&h.engine());
    TxnId id;
    ASSERT_TRUE(tm.Begin(&id).ok());
    ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "d1")).ok());
    ASSERT_TRUE(tm.Execute(id, MakeCreate(2, "d2")).ok());
    ASSERT_TRUE(h.engine().log().ForceAll().ok());
  }
  h.Crash();
  FaultInjector& inj = h.disk().fault_injector();
  inj.Arm(fault::kTxnRollbackCrash, FaultSpec::CrashOnHit(2));
  RecoveryStats rs;
  EXPECT_FALSE(h.Recover(&rs).ok());  // died mid-loser-rollback
  inj.DisarmAll();
  h.Crash();
  ASSERT_TRUE(h.Recover(&rs).ok());
  EXPECT_EQ(rs.loser_txns, 1u);
  EXPECT_EQ(ReadString(&h.engine(), 1), "base");
  EXPECT_FALSE(h.engine().Exists(2));
  EXPECT_TRUE(h.VerifyAgainstReference().ok());
}

TEST(TxnTest, TornCommitDecidedByTheStableRecord) {
  // A commit that crashes between append and force is decided by whether
  // the record happens to survive: lost record => loser, surviving
  // record => committed. Both outcomes must recover consistently.
  for (bool record_survives : {false, true}) {
    SCOPED_TRACE(record_survives);
    CrashHarness h{EngineOptions{}};
    ASSERT_TRUE(h.Execute(MakeCreate(1, "base")).ok());
    TxnManager tm(&h.engine());
    TxnId id;
    ASSERT_TRUE(tm.Begin(&id).ok());
    ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "dirty")).ok());
    ASSERT_TRUE(h.engine().log().ForceAll().ok());

    FaultInjector& inj = h.disk().fault_injector();
    inj.Arm(fault::kTxnCommitTorn, FaultSpec::CrashOnHit(1));
    Status st = tm.Commit(id);
    inj.DisarmAll();
    ASSERT_TRUE(st.IsAborted()) << st.ToString();
    if (record_survives) {
      ASSERT_TRUE(h.engine().log().ForceAll().ok());
    }
    h.Crash();
    RecoveryStats rs;
    ASSERT_TRUE(h.Recover(&rs).ok());
    if (record_survives) {
      EXPECT_EQ(rs.loser_txns, 0u);
      EXPECT_EQ(ReadString(&h.engine(), 1), "dirty");
    } else {
      EXPECT_EQ(rs.loser_txns, 1u);
      EXPECT_EQ(ReadString(&h.engine(), 1), "base");
    }
    EXPECT_TRUE(h.VerifyAgainstReference().ok());
  }
}

TEST(TxnTest, CheckpointTruncationKeepsLoserBackchain) {
  CrashHarness h{EngineOptions{}};
  ASSERT_TRUE(h.Execute(MakeCreate(1, "base")).ok());
  TxnManager tm(&h.engine());
  TxnId id;
  ASSERT_TRUE(tm.Begin(&id).ok());
  ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "dirty")).ok());
  EXPECT_NE(tm.OldestActiveBeginLsn(), kMaxLsn);
  // The checkpoint truncates the log but clamps at the open
  // transaction's begin record; the backchain survives for the loser
  // pass below.
  ASSERT_TRUE(h.engine().Checkpoint().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(h.Execute(MakeCreate(1000 + i, "filler")).ok());
  }
  ASSERT_TRUE(h.engine().log().ForceAll().ok());
  h.Crash();
  RecoveryStats rs;
  ASSERT_TRUE(h.Recover(&rs).ok());
  EXPECT_EQ(rs.loser_txns, 1u);
  EXPECT_EQ(ReadString(&h.engine(), 1), "base");
  EXPECT_TRUE(h.VerifyAgainstReference().ok());
}

TEST(TxnTest, TxnIdWatermarkSurvivesCheckpointTruncation) {
  // After a checkpoint truncates every transaction record off the live
  // log, recovery must still know the highest id ever issued (the
  // checkpoint carries it) — otherwise a new transaction would reuse a
  // finished one's id and the archive would conflate their histories.
  CrashHarness h{EngineOptions{}};
  ASSERT_TRUE(h.Execute(MakeCreate(1, "base")).ok());
  TxnId last = 0;
  {
    TxnManager tm(&h.engine());
    for (int i = 0; i < 3; ++i) {
      TxnId id;
      ASSERT_TRUE(tm.Begin(&id).ok());
      ASSERT_TRUE(tm.Execute(id, MakePhysicalWrite(1, "v")).ok());
      ASSERT_TRUE(tm.Commit(id).ok());
      last = id;
    }
  }
  ASSERT_TRUE(h.engine().FlushAll().ok());
  ASSERT_TRUE(h.engine().Checkpoint().ok());
  h.Crash();
  RecoveryStats rs;
  ASSERT_TRUE(h.Recover(&rs).ok());
  EXPECT_EQ(rs.max_txn_id, last);
  TxnManager tm2(&h.engine());
  TxnId fresh;
  ASSERT_TRUE(tm2.Begin(&fresh).ok());
  EXPECT_GT(fresh, last);
  ASSERT_TRUE(tm2.Rollback(fresh).ok());
}

TEST(TxnTest, QueueEnqueueRollsBackByRetreat) {
  CrashHarness h{EngineOptions{}};
  RecoverableQueue q(&h.engine());
  ASSERT_TRUE(q.Open().ok());
  ASSERT_TRUE(q.Enqueue("m0").ok());

  // A transactional enqueue: the same two operations Enqueue logs, but
  // in transaction scope. Rolling back undoes the tail bump with the
  // registered retreat inverse — no meta before-image needed — and the
  // message create with a delete.
  const ObjectId meta = 300'000;
  const ObjectId msg = 300'000 + 1 + 1;  // MessageId(tail=1)
  OperationDesc bump;
  bump.op_class = OpClass::kPhysiological;
  bump.func = kFuncQueueAdvanceTail;
  bump.writes = {meta};
  bump.reads = {meta};
  TxnManager tm(&h.engine());
  TxnId id;
  ASSERT_TRUE(tm.Begin(&id).ok());
  ASSERT_TRUE(tm.Execute(id, MakeCreate(msg, "m1")).ok());
  ASSERT_TRUE(tm.Execute(id, bump).ok());
  ASSERT_TRUE(tm.Rollback(id).ok());
  EXPECT_EQ(tm.undo_stats().logical_inverses, 2u);
  EXPECT_EQ(tm.undo_stats().image_restores, 0u);

  ASSERT_TRUE(h.engine().log().ForceAll().ok());
  h.Crash();
  ASSERT_TRUE(h.Recover().ok());
  RecoverableQueue reopened(&h.engine());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.tail(), 1u);
  EXPECT_FALSE(h.engine().Exists(msg));
  ObjectValue front;
  ASSERT_TRUE(reopened.Peek(&front).ok());
  EXPECT_EQ(AsString(front), "m0");
}

TEST(TxnTest, BtreeInsertRollsBackByErase) {
  CrashHarness h{EngineOptions{}};
  RegisterBtreeTransforms();
  const ObjectId page_id = 777;
  BtreePage page;
  page.LeafInsert(7, Slice("seven"));
  ASSERT_TRUE(
      h.Execute(MakeCreate(page_id, Slice(page.Serialize()))).ok());

  // Fresh-key insert: exactly inverted by erase (logical, no image).
  OperationDesc insert;
  insert.op_class = OpClass::kPhysiological;
  insert.func = kFuncBtreeInsertLeaf;
  insert.writes = {page_id};
  insert.reads = {page_id};
  PutVarint64(&insert.params, 42);
  PutLengthPrefixed(&insert.params, Slice("fresh"));

  // Replacing insert on the same key: erase would lose the old value, so
  // the engine must fall back to a page before-image.
  OperationDesc replace = insert;
  replace.params.clear();
  PutVarint64(&replace.params, 7);
  PutLengthPrefixed(&replace.params, Slice("SEVEN"));

  TxnManager tm(&h.engine());
  TxnId id;
  ASSERT_TRUE(tm.Begin(&id).ok());
  ASSERT_TRUE(tm.Execute(id, insert).ok());
  ASSERT_TRUE(tm.Execute(id, replace).ok());
  ASSERT_TRUE(tm.Rollback(id).ok());
  EXPECT_EQ(tm.undo_stats().logical_inverses, 1u);
  EXPECT_EQ(tm.undo_stats().image_restores, 1u);

  ASSERT_TRUE(h.engine().log().ForceAll().ok());
  h.Crash();
  ASSERT_TRUE(h.Recover().ok());
  ObjectValue bytes;
  ASSERT_TRUE(h.engine().Read(page_id, &bytes).ok());
  BtreePage after;
  ASSERT_TRUE(BtreePage::Deserialize(Slice(bytes), &after).ok());
  std::vector<uint8_t> value;
  EXPECT_TRUE(after.LeafLookup(42, &value).IsNotFound());
  ASSERT_TRUE(after.LeafLookup(7, &value).ok());
  EXPECT_EQ(AsString(value), "seven");
  EXPECT_TRUE(h.VerifyAgainstReference().ok());
}

}  // namespace
}  // namespace loglog
