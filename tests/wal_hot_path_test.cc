#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "obs/metrics.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

// Heap-allocation probe for the zero-copy append test: every unaligned
// global new/delete routes through malloc/free with a counter. The
// aligned variants keep their defaults (they pair among themselves), so
// the replacement is self-consistent for the whole test binary.
static std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
// The replacement news above allocate with malloc, so freeing here is
// matched; GCC cannot see the pairing across replaced globals.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace loglog {
namespace {

// The record mix every test below pushes through both append paths:
// plain ops, in-txn ops (with and without before-images), txn markers,
// and compensations — the full hot-path shape catalogue.
struct HotRecord {
  RecordType type = RecordType::kOperation;
  OperationDesc op;
  uint64_t txn_id = 0;
  Lsn prev_lsn = kInvalidLsn;
  Lsn undo_next_lsn = kInvalidLsn;
  uint64_t undo_skip = 0;
  std::vector<UndoImage> images;
};

std::vector<HotRecord> RecordMix() {
  std::vector<HotRecord> mix;
  // Non-transactional operation (pre-transaction byte format).
  {
    HotRecord r;
    r.op = MakeCreate(1, "genesis");
    mix.push_back(std::move(r));
  }
  // Txn begin marker (head of the backchain).
  {
    HotRecord r;
    r.type = RecordType::kTxnBegin;
    r.txn_id = 7;
    mix.push_back(std::move(r));
  }
  // In-txn operation with a logical inverse: trailer, no images.
  {
    HotRecord r;
    r.op = MakeAppend(1, "-tail");
    r.txn_id = 7;
    r.prev_lsn = 2;
    mix.push_back(std::move(r));
  }
  // In-txn blind write: trailer plus a before-image.
  {
    HotRecord r;
    r.op = MakePhysicalWrite(1, "overwrite");
    r.txn_id = 7;
    r.prev_lsn = 3;
    r.images.resize(1);
    r.images[0].exists = true;
    r.images[0].value = {'g', 'e', 'n'};
    mix.push_back(std::move(r));
  }
  // In-txn create of a fresh object: image records nonexistence.
  {
    HotRecord r;
    r.op = MakeCreate(2, "second");
    r.txn_id = 7;
    r.prev_lsn = 4;
    r.images.resize(1);
    mix.push_back(std::move(r));
  }
  // Compensation restoring an image mid-rollback (cursor fields set).
  {
    HotRecord r;
    r.type = RecordType::kCompensation;
    r.op = MakePhysicalWrite(1, "gen");
    r.txn_id = 7;
    r.prev_lsn = 5;
    r.undo_next_lsn = 3;
    r.undo_skip = 1;
    mix.push_back(std::move(r));
  }
  // Compensation finishing the rollback (no next record to undo).
  {
    HotRecord r;
    r.type = RecordType::kCompensation;
    r.op = MakeDelete(2);
    r.txn_id = 7;
    r.prev_lsn = 6;
    mix.push_back(std::move(r));
  }
  // Abort and a fresh commit-shaped marker close the catalogue.
  {
    HotRecord r;
    r.type = RecordType::kTxnAbort;
    r.txn_id = 7;
    r.prev_lsn = 7;
    mix.push_back(std::move(r));
  }
  {
    HotRecord r;
    r.type = RecordType::kTxnCommit;
    r.txn_id = 9;
    r.prev_lsn = 1;
    mix.push_back(std::move(r));
  }
  return mix;
}

LogRecord ToLogRecord(const HotRecord& h) {
  LogRecord rec;
  rec.type = h.type;
  rec.op = h.op;
  rec.txn_id = h.txn_id;
  rec.prev_lsn = h.prev_lsn;
  rec.undo_next_lsn = h.undo_next_lsn;
  rec.undo_skip = h.undo_skip;
  rec.undo_images = h.images;
  return rec;
}

Lsn AppendTyped(LogManager* log, const HotRecord& h, size_t* payload) {
  switch (h.type) {
    case RecordType::kOperation:
      return log->AppendOperation(h.op, h.txn_id, h.prev_lsn, h.images,
                                  payload);
    case RecordType::kCompensation:
      return log->AppendCompensation(h.op, h.txn_id, h.prev_lsn,
                                     h.undo_next_lsn, h.undo_skip, payload);
    default:
      return log->AppendTxnMarker(h.type, h.txn_id, h.prev_lsn, payload);
  }
}

// The tentpole contract: reserve+fill and the compatibility wrapper
// must produce byte-identical stable logs — same frames, same CRCs —
// so enabling the zero-copy path can never change recovery's input.
TEST(WalHotPathTest, TypedAppendersAreByteIdenticalToWrapper) {
  SimulatedDisk wrapper_disk;
  SimulatedDisk typed_disk;
  LogManager wrapper_log(&wrapper_disk.log());
  LogManager typed_log(&typed_disk.log());

  for (const HotRecord& h : RecordMix()) {
    Lsn a = wrapper_log.Append(ToLogRecord(h));
    size_t payload = 0;
    Lsn b = AppendTyped(&typed_log, h, &payload);
    EXPECT_EQ(a, b);
    EXPECT_GT(payload, 0u);
  }
  ASSERT_TRUE(wrapper_log.ForceAll().ok());
  ASSERT_TRUE(typed_log.ForceAll().ok());

  Slice w = wrapper_disk.log().Contents();
  Slice t = typed_disk.log().Contents();
  ASSERT_EQ(w.size(), t.size());
  EXPECT_EQ(w.ToString(), t.ToString());
}

// The typed appenders' frames must decode back to exactly the fields
// that went in (round-trip through the recovery reader).
TEST(WalHotPathTest, TypedAppendersRoundTripThroughRecoveryReader) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  std::vector<HotRecord> mix = RecordMix();
  std::vector<size_t> payloads;
  for (const HotRecord& h : mix) {
    size_t payload = 0;
    AppendTyped(&log, h, &payload);
    payloads.push_back(payload);
  }
  ASSERT_TRUE(log.ForceAll().ok());

  std::vector<LogRecord> records;
  bool torn = false;
  Lsn next_lsn = 0;
  uint64_t valid_end = 0;
  ASSERT_TRUE(
      LogManager::ReadStable(disk.log(), &records, &torn, &next_lsn,
                             &valid_end)
          .ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    const HotRecord& h = mix[i];
    const LogRecord& rec = records[i];
    EXPECT_EQ(rec.lsn, static_cast<Lsn>(i + 1));
    EXPECT_EQ(rec.type, h.type);
    EXPECT_EQ(rec.txn_id, h.txn_id);
    if (h.txn_id != 0) {
      EXPECT_EQ(rec.prev_lsn, h.prev_lsn);
    }
    if (h.type == RecordType::kCompensation) {
      EXPECT_EQ(rec.undo_next_lsn, h.undo_next_lsn);
      EXPECT_EQ(rec.undo_skip, h.undo_skip);
    }
    ASSERT_EQ(rec.undo_images.size(), h.images.size());
    for (size_t j = 0; j < h.images.size(); ++j) {
      EXPECT_EQ(rec.undo_images[j].exists, h.images[j].exists);
      EXPECT_EQ(rec.undo_images[j].value, h.images[j].value);
    }
    // The out-param is the record's true logging cost: what the decoded
    // record re-encodes to, LSN varint included.
    EXPECT_EQ(payloads[i], rec.EncodedSize()) << "record " << i;
  }
}

// Steady-state reserve+fill must not touch the heap per record: the
// arena never grows (wal.append.allocs stays flat), and raw allocator
// traffic is bounded by the deque's block amortization — far below one
// allocation per record, where the old LogRecord path paid several.
TEST(WalHotPathTest, ReserveFillDoesNotAllocatePerRecord) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  Counter* arena_allocs =
      MetricsRegistry::Global().GetCounter(metric::kWalAppendAllocs);

  const OperationDesc op = MakePhysicalWrite(42, "steady-state-payload");
  const std::vector<UndoImage> no_images;

  // Warm-up: grow the arena past what the measured run needs, then
  // drain it so the measured appends replay over reclaimed space.
  for (int i = 0; i < 512; ++i) {
    log.AppendOperation(op, 0, kInvalidLsn, no_images);
  }
  ASSERT_TRUE(log.ForceAll().ok());

  constexpr int kRecords = 256;
  const uint64_t arena_before = arena_allocs->value();
  const uint64_t heap_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < kRecords; ++i) {
    log.AppendOperation(op, 0, kInvalidLsn, no_images);
  }
  const uint64_t heap_after = g_heap_allocs.load(std::memory_order_relaxed);
  const uint64_t arena_after = arena_allocs->value();

  EXPECT_EQ(arena_after - arena_before, 0u)
      << "arena grew during steady-state appends";
  // Only the pending-record deque may allocate, one block per ~dozen
  // records; a per-record encoder allocation would show up as >= 256.
  EXPECT_LT(heap_after - heap_before, kRecords / 4)
      << "append path allocates per record";

  ASSERT_TRUE(log.ForceAll().ok());
  EXPECT_EQ(log.last_stable_lsn(), log.last_assigned_lsn());
}

// Reservations fill out of order; forces wait for the contiguous
// prefix. Committing the later reservation first must not let it jump
// the earlier one on the device.
TEST(WalHotPathTest, OutOfOrderCommitKeepsLsnOrder) {
  SimulatedDisk disk;
  LogManager log(&disk.log());

  LogManager::Reservation first =
      log.AppendReserve(RecordType::kTxnBegin,
                        EncodedTxnMarkerBodySize(5, kInvalidLsn));
  LogManager::Reservation second =
      log.AppendReserve(RecordType::kTxnCommit, EncodedTxnMarkerBodySize(5, 1));
  EXPECT_EQ(first.lsn + 1, second.lsn);

  EncodeTxnMarkerBody(second.body, 5, 1);
  log.AppendCommit(second);
  EncodeTxnMarkerBody(first.body, 5, kInvalidLsn);
  log.AppendCommit(first);

  ASSERT_TRUE(log.ForceAll().ok());
  std::vector<LogRecord> records;
  bool torn = false;
  Lsn next_lsn = 0;
  uint64_t valid_end = 0;
  ASSERT_TRUE(
      LogManager::ReadStable(disk.log(), &records, &torn, &next_lsn,
                             &valid_end)
          .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, RecordType::kTxnBegin);
  EXPECT_EQ(records[1].type, RecordType::kTxnCommit);
  EXPECT_EQ(records[0].lsn, first.lsn);
  EXPECT_EQ(records[1].lsn, second.lsn);
}

}  // namespace
}  // namespace loglog
