#include <gtest/gtest.h>

#include "ops/op_builder.h"
#include "storage/simulated_disk.h"
#include "wal/log_dump.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

LogRecord OpRecord(Lsn lsn, OperationDesc op) {
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.lsn = lsn;
  rec.op = std::move(op);
  return rec;
}

TEST(LogRecordTest, OperationRoundTrip) {
  LogRecord rec = OpRecord(42, MakeAppRead(7, 9));
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  Slice s(buf);
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodeFrom(&s, &out).ok());
  EXPECT_EQ(out.type, RecordType::kOperation);
  EXPECT_EQ(out.lsn, 42u);
  EXPECT_TRUE(out.op == rec.op);
  EXPECT_TRUE(s.empty());
}

TEST(LogRecordTest, CheckpointRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kCheckpoint;
  rec.lsn = 10;
  rec.dot = {{1, 5, false}, {2, 7, true}};
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  Slice s(buf);
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodeFrom(&s, &out).ok());
  ASSERT_EQ(out.dot.size(), 2u);
  EXPECT_EQ(out.dot[0].id, 1u);
  EXPECT_EQ(out.dot[0].rsi, 5u);
  EXPECT_FALSE(out.dot[0].dead);
  EXPECT_TRUE(out.dot[1].dead);
}

TEST(LogRecordTest, InstallRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kInstall;
  rec.lsn = 11;
  rec.installed_vars = {{3, kInvalidLsn}, {4, 9}};
  rec.installed_notx = {{5, 12}};
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  Slice s(buf);
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodeFrom(&s, &out).ok());
  ASSERT_EQ(out.installed_vars.size(), 2u);
  EXPECT_EQ(out.installed_vars[0].rsi, kInvalidLsn);
  ASSERT_EQ(out.installed_notx.size(), 1u);
  EXPECT_EQ(out.installed_notx[0].id, 5u);
}

TEST(LogRecordTest, FlushTxnRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kFlushTxnBegin;
  rec.lsn = 20;
  rec.flush_values.push_back({1, 15, {0xaa, 0xbb}, false});
  rec.flush_values.push_back({2, 16, {}, true});
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  Slice s(buf);
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodeFrom(&s, &out).ok());
  ASSERT_EQ(out.flush_values.size(), 2u);
  EXPECT_EQ(out.flush_values[0].value, (std::vector<uint8_t>{0xaa, 0xbb}));
  EXPECT_TRUE(out.flush_values[1].erase);

  LogRecord commit;
  commit.type = RecordType::kFlushTxnCommit;
  commit.lsn = 21;
  commit.ref_lsn = 20;
  buf.clear();
  commit.EncodeTo(&buf);
  Slice s2(buf);
  ASSERT_TRUE(LogRecord::DecodeFrom(&s2, &out).ok());
  EXPECT_EQ(out.ref_lsn, 20u);
}

TEST(LogRecordTest, FramingDetectsCorruption) {
  LogRecord rec = OpRecord(1, MakePhysicalWrite(1, "value"));
  std::vector<uint8_t> framed;
  FrameRecord(rec, &framed);

  // Intact record decodes.
  Slice ok(framed);
  LogRecord out;
  ASSERT_TRUE(ReadFramedRecord(&ok, &out).ok());

  // Bit flip in payload breaks the checksum.
  std::vector<uint8_t> flipped = framed;
  flipped.back() ^= 0x1;
  Slice bad(flipped);
  EXPECT_TRUE(ReadFramedRecord(&bad, &out).IsCorruption());

  // Truncated header/payload is a torn record.
  for (size_t keep : {1ul, 4ul, 7ul, framed.size() - 1}) {
    std::vector<uint8_t> torn(framed.begin(), framed.begin() + keep);
    Slice t(torn);
    EXPECT_TRUE(ReadFramedRecord(&t, &out).IsCorruption()) << keep;
  }

  // Empty input is a clean end of log.
  Slice empty;
  EXPECT_TRUE(ReadFramedRecord(&empty, &out).IsNotFound());
}

TEST(LogManagerTest, AppendAssignsDenseLsns) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  EXPECT_EQ(log.Append(OpRecord(0, MakePhysicalWrite(1, "a"))), 1u);
  EXPECT_EQ(log.Append(OpRecord(0, MakePhysicalWrite(1, "b"))), 2u);
  EXPECT_EQ(log.last_assigned_lsn(), 2u);
  EXPECT_EQ(log.last_stable_lsn(), 0u);
  EXPECT_EQ(log.volatile_record_count(), 2u);
}

TEST(LogManagerTest, ForceMakesPrefixStable) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  for (int i = 0; i < 5; ++i) {
    log.Append(OpRecord(0, MakePhysicalWrite(1, "x")));
  }
  ASSERT_TRUE(log.Force(3).ok());
  EXPECT_EQ(log.last_stable_lsn(), 3u);
  EXPECT_EQ(log.volatile_record_count(), 2u);
  EXPECT_EQ(disk.stats().log_forces, 1u);

  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(
      LogManager::ReadStable(disk.log(), &records, &torn, &next, &valid_end)
          .ok());
  EXPECT_FALSE(torn);
  EXPECT_EQ(records.size(), 3u);
  EXPECT_EQ(next, 4u);

  ASSERT_TRUE(log.ForceAll().ok());
  EXPECT_EQ(log.last_stable_lsn(), 5u);
}

TEST(LogManagerTest, ForceBelowStableIsNoop) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  log.Append(OpRecord(0, MakePhysicalWrite(1, "x")));
  ASSERT_TRUE(log.ForceAll().ok());
  uint64_t forces = disk.stats().log_forces;
  ASSERT_TRUE(log.Force(1).ok());
  EXPECT_EQ(disk.stats().log_forces, forces);
}

TEST(LogManagerTest, RecoverySeedsFromExistingLog) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    for (int i = 0; i < 3; ++i) {
      log.Append(OpRecord(0, MakePhysicalWrite(1, "x")));
    }
    ASSERT_TRUE(log.ForceAll().ok());
  }
  LogManager revived(&disk.log());
  EXPECT_EQ(revived.last_stable_lsn(), 3u);
  EXPECT_EQ(revived.Append(OpRecord(0, MakePhysicalWrite(1, "y"))), 4u);
}

TEST(LogManagerTest, TornTailStopsCleanly) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  for (int i = 0; i < 3; ++i) {
    log.Append(OpRecord(0, MakePhysicalWrite(1, "abcdefgh")));
  }
  ASSERT_TRUE(log.ForceAll().ok());
  disk.log().TearTail(5);

  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(
      LogManager::ReadStable(disk.log(), &records, &torn, &next, &valid_end)
          .ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(next, 3u);
  EXPECT_LT(valid_end, disk.log().end_offset());
}

TEST(LogManagerTest, TruncateBeforeDropsPrefix) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  for (int i = 0; i < 4; ++i) {
    log.Append(OpRecord(0, MakePhysicalWrite(1, "x")));
    ASSERT_TRUE(log.ForceAll().ok());  // one force per record
  }
  uint64_t before = disk.log().retained_bytes();
  log.TruncateBefore(3);
  EXPECT_LT(disk.log().retained_bytes(), before);

  std::vector<LogRecord> records;
  bool torn;
  Lsn next;
  uint64_t valid_end;
  ASSERT_TRUE(
      LogManager::ReadStable(disk.log(), &records, &torn, &next, &valid_end)
          .ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 3u);
  // The archive still holds everything for verification.
  EXPECT_GT(disk.log().ArchiveContents().size(),
            disk.log().retained_bytes());
}

TEST(LogDumpTest, SummarizesAndPrints) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  log.Append(OpRecord(0, MakePhysicalWrite(1, "v")));
  log.Append(OpRecord(0, MakeCopy(2, 1)));
  LogRecord ckpt;
  ckpt.type = RecordType::kCheckpoint;
  log.Append(std::move(ckpt));
  LogRecord install;
  install.type = RecordType::kInstall;
  install.installed_vars = {{1, kInvalidLsn}};
  log.Append(std::move(install));
  ASSERT_TRUE(log.ForceAll().ok());

  std::string text;
  LogDumpSummary summary;
  ASSERT_TRUE(DumpLog(disk.log().Contents(), &text, &summary).ok());
  EXPECT_EQ(summary.operations, 2u);
  EXPECT_EQ(summary.checkpoints, 1u);
  EXPECT_EQ(summary.installs, 1u);
  EXPECT_EQ(summary.total(), 4u);
  EXPECT_FALSE(summary.torn_tail);
  EXPECT_NE(text.find("checkpoint"), std::string::npos);
  EXPECT_NE(text.find("lsn=1"), std::string::npos);

  // Torn tails are reported, not errors; nullptr output means scan-only.
  disk.log().TearTail(3);
  ASSERT_TRUE(DumpLog(disk.log().Contents(), nullptr, &summary).ok());
  EXPECT_TRUE(summary.torn_tail);
  EXPECT_EQ(summary.total(), 3u);
}

TEST(LogManagerTest, TruncateToEndDropsEverything) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  log.Append(OpRecord(0, MakePhysicalWrite(1, "x")));
  ASSERT_TRUE(log.ForceAll().ok());
  log.TruncateBefore(100);  // beyond all stable records
  EXPECT_EQ(disk.log().retained_bytes(), 0u);
}

}  // namespace
}  // namespace loglog
