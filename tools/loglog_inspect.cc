// loglog_inspect: operational inspection of a loglog disk.
//
// Modes:
//   loglog_inspect --demo [--crash] [--save FILE]   run a built-in workload
//   loglog_inspect FILE                             open a saved disk image
//   loglog_inspect --ship-status                    two-node replication demo
//
// Either way the tool dumps the retained log (DumpLog listing + summary),
// replays recovery as a dry run with tracing enabled (the on-disk image
// file is never modified), and reports the metrics snapshot. Output is
// text by default, one JSON document with --json; --trace FILE writes the
// recovery timeline as Chrome trace-event JSON (load in about:tracing or
// https://ui.perfetto.dev).
//
// Flags:
//   --demo          populate a fresh disk with the mixed workload
//   --txns N        (with --demo) append N multi-op transactions, every
//                   third rolled back — the dump then shows begin/commit/
//                   abort markers, compensation records, and the abort
//                   rate (default 6, 0 disables)
//   --crash         (with --demo) stop without flushing: recovery has work
//   --save FILE     save the disk image (then continue inspecting)
//   --json          emit one JSON document instead of text
//   --trace FILE    write the recovery timeline as Chrome trace JSON
//   --threads N     redo worker threads for the dry-run recovery (default 4)
//   --no-recover    skip the dry-run recovery (log listing + metrics only)
//   --seed N        demo workload seed (default 321)
//   --ops N         demo workload operation count (default 400)
//   --quiet         suppress the per-record listing in text mode
//   --class-mix     per-logging-class breakdown (counts, bytes, % of log)
//                   of the retained log and the full archive; in JSON the
//                   breakdown is always embedded as "class_mix"
//   --ship-status   run a primary + log-shipped standby pair and report
//                   primary durable LSN vs standby applied LSN with the
//                   current lag (records/bytes/LSN) from the ship.*
//                   metrics snapshot; honors --seed/--ops/--threads/--json
//   --logstore-stats  run the mixed workload on a log-as-database engine
//                   (StorageBackend::kLogStore, background compaction,
//                   cold-tier GC) and report the object index (entries,
//                   live bytes), the two-tier footprint (hot window +
//                   cold segment table), dead bytes and space
//                   amplification, compactor totals, and the logstore.*
//                   metrics; honors --seed/--ops/--json/--quiet (drops
//                   the segment table)
//   --blackbox FILE read a *.blackbox postmortem artifact (standalone):
//                   build/config provenance, the flight-recorder tail as
//                   a merged human timeline with thread names, and the
//                   embedded metrics + health snapshot; honors --json,
//                   --quiet drops the per-event listing
//   --blackbox-out FILE   cut a black box of this process after the run
//   --telemetry-out FILE  append one telemetry JSONL sample after the run
//   --prom-out FILE       write the Prometheus text exposition after the
//                         run (both exporter flags feed CI artifacts)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/recovery_engine.h"
#include "engine/txn_manager.h"
#include "logstore/compactor.h"
#include "obs/blackbox.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "ship/log_shipper.h"
#include "ship/replication_channel.h"
#include "ship/standby_applier.h"
#include "sim/workload.h"
#include "storage/disk_image.h"
#include "storage/simulated_disk.h"
#include "wal/log_dump.h"

namespace loglog {
namespace {

struct InspectOptions {
  bool demo = false;
  bool ship_status = false;
  bool logstore_stats = false;
  bool crash = false;
  bool json = false;
  bool recover = true;
  bool quiet = false;
  bool class_mix = false;
  int threads = 4;
  uint64_t seed = 321;
  uint64_t ops = 400;
  uint64_t txns = 6;
  std::string save_path;
  std::string trace_path;
  std::string image_path;
  std::string blackbox_path;
  std::string blackbox_out;
  std::string telemetry_out;
  std::string prom_out;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [IMAGE] [--demo] [--ship-status] "
               "[--logstore-stats] [--blackbox FILE] [--crash] "
               "[--save FILE] [--json] [--trace FILE] [--threads N] "
               "[--no-recover] [--seed N] [--ops N] [--txns N] [--quiet] "
               "[--class-mix] [--blackbox-out FILE] [--telemetry-out FILE] "
               "[--prom-out FILE]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, InspectOptions* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&](std::string* v) {
      if (i + 1 >= argc) return false;
      *v = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--demo") {
      out->demo = true;
    } else if (arg == "--ship-status") {
      out->ship_status = true;
    } else if (arg == "--logstore-stats") {
      out->logstore_stats = true;
    } else if (arg == "--crash") {
      out->crash = true;
    } else if (arg == "--json") {
      out->json = true;
    } else if (arg == "--no-recover") {
      out->recover = false;
    } else if (arg == "--quiet") {
      out->quiet = true;
    } else if (arg == "--class-mix") {
      out->class_mix = true;
    } else if (arg == "--save") {
      if (!next_value(&out->save_path)) return false;
    } else if (arg == "--trace") {
      if (!next_value(&out->trace_path)) return false;
    } else if (arg == "--blackbox") {
      if (!next_value(&out->blackbox_path)) return false;
    } else if (arg == "--blackbox-out") {
      if (!next_value(&out->blackbox_out)) return false;
    } else if (arg == "--telemetry-out") {
      if (!next_value(&out->telemetry_out)) return false;
    } else if (arg == "--prom-out") {
      if (!next_value(&out->prom_out)) return false;
    } else if (arg == "--threads") {
      if (!next_value(&value)) return false;
      out->threads = std::atoi(value.c_str());
    } else if (arg == "--seed") {
      if (!next_value(&value)) return false;
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--ops") {
      if (!next_value(&value)) return false;
      out->ops = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--txns") {
      if (!next_value(&value)) return false;
      out->txns = std::strtoull(value.c_str(), nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else if (out->image_path.empty()) {
      out->image_path = arg;
    } else {
      std::fprintf(stderr, "extra positional argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (!out->blackbox_path.empty()) {
    if (out->demo || out->ship_status || !out->image_path.empty()) {
      std::fprintf(stderr, "--blackbox is standalone (no --demo/IMAGE)\n");
      return false;
    }
    return true;
  }
  if (out->ship_status) {
    if (out->demo || !out->image_path.empty()) {
      std::fprintf(stderr, "--ship-status is standalone (no --demo/IMAGE)\n");
      return false;
    }
    return true;
  }
  if (out->logstore_stats) {
    if (out->demo || !out->image_path.empty()) {
      std::fprintf(stderr,
                   "--logstore-stats is standalone (no --demo/IMAGE)\n");
      return false;
    }
    return true;
  }
  if (out->demo == !out->image_path.empty()) {
    std::fprintf(stderr, "pass exactly one of --demo or an IMAGE file\n");
    return false;
  }
  return true;
}

EngineOptions DemoEngineOptions(const InspectOptions& opts) {
  EngineOptions eo;
  eo.purge_threshold_ops = 12;
  eo.wal_force_policy = ForcePolicy::kGroup;  // exercise group commit
  eo.recovery.redo_threads = opts.threads;
  return eo;
}

/// Runs the mixed workload on a fresh engine over `disk`. With crash, the
/// engine is simply dropped afterwards — all volatile state (cache, write
/// graph, unforced log buffer) dies, so the stable disk is exactly what a
/// power loss would leave, and recovery has real work. Without crash the
/// state is flushed clean first.
Status RunDemo(const InspectOptions& opts, SimulatedDisk* disk) {
  auto engine =
      std::make_unique<RecoveryEngine>(DemoEngineOptions(opts), disk);
  MixedWorkloadOptions wopts;
  wopts.seed = opts.seed;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    LOGLOG_RETURN_IF_ERROR(engine->Execute(op));
  }
  for (uint64_t i = 0; i < opts.ops; ++i) {
    Status st = engine->Execute(workload.Next());
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  // A transactional slice on top of the plain workload: every third
  // transaction rolls back, so the dump shows all four transaction
  // record types and a nonzero abort rate.
  if (opts.txns > 0) {
    TxnManager tm(engine.get());
    for (uint64_t t = 0; t < opts.txns; ++t) {
      TxnId id;
      LOGLOG_RETURN_IF_ERROR(tm.Begin(&id));
      for (int j = 0; j < 3; ++j) {
        Status st = tm.Execute(id, workload.Next());
        if (!st.ok() && !st.IsNotFound()) return st;
      }
      LOGLOG_RETURN_IF_ERROR(t % 3 == 2 ? tm.Rollback(id) : tm.Commit(id));
    }
  }
  if (!opts.crash) {
    LOGLOG_RETURN_IF_ERROR(engine->FlushAll());
    LOGLOG_RETURN_IF_ERROR(engine->Checkpoint());
  }
  LOGLOG_RETURN_IF_ERROR(engine->log().ForceAll());
  return Status::OK();
}

/// Renders the recorded spans as an indented per-thread tree with
/// durations — the text-mode recovery timeline. Threads that named
/// themselves (redo workers, the shipper, the standby applier) show that
/// name next to the id.
void PrintTimeline(const std::vector<TraceEvent>& events, FILE* out) {
  std::map<uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& ev : events) by_tid[ev.tid].push_back(&ev);
  for (auto& [tid, evs] : by_tid) {
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
    const std::string name = ThreadRegistry::Global().NameOf(tid);
    if (name.empty()) {
      std::fprintf(out, "  thread %u:\n", tid);
    } else {
      std::fprintf(out, "  thread %u (%s):\n", tid, name.c_str());
    }
    std::vector<const TraceEvent*> open;
    for (const TraceEvent* ev : evs) {
      while (!open.empty() &&
             open.back()->ts_us + open.back()->dur_us <= ev->ts_us) {
        open.pop_back();
      }
      std::string indent(4 + 2 * open.size(), ' ');
      std::string args;
      for (const auto& [k, v] : ev->args) {
        args += args.empty() ? " {" : ", ";
        args += k + "=" + v;
      }
      if (!args.empty()) args += "}";
      if (ev->phase == TraceEvent::Phase::kInstant) {
        std::fprintf(out, "%s* %s%s\n", indent.c_str(), ev->name.c_str(),
                     args.c_str());
      } else {
        std::fprintf(out, "%s%s %llu us%s\n", indent.c_str(),
                     ev->name.c_str(),
                     static_cast<unsigned long long>(ev->dur_us),
                     args.c_str());
        open.push_back(ev);
      }
    }
  }
}

/// Reads a `*.blackbox` postmortem artifact and renders it: provenance,
/// the flight-recorder tail as one merged timeline (oldest first, thread
/// names resolved from the dump's own table), and the metrics + health
/// snapshot frozen at dump time. Decode failures (truncation, bit rot)
/// report the corruption instead of crashing.
int RunBlackBox(const InspectOptions& opts) {
  std::string bytes;
  FILE* f = std::fopen(opts.blackbox_path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "open black box: %s\n", opts.blackbox_path.c_str());
    return 1;
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);

  BlackBoxDump dump;
  Status st = DecodeBlackBox(Slice(bytes), &dump);
  if (!st.ok()) {
    std::fprintf(stderr, "decode black box: %s\n", st.ToString().c_str());
    return 1;
  }
  std::map<uint32_t, std::string> threads(dump.thread_names.begin(),
                                          dump.thread_names.end());
  auto thread_label = [&threads](uint32_t tid) {
    auto it = threads.find(tid);
    return it != threads.end() && !it->second.empty()
               ? it->second
               : "t" + std::to_string(tid);
  };

  if (opts.json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("reason").String(dump.reason);
    w.Key("build_info").Raw(dump.build_info_json);
    w.Key("total_recorded").Uint(dump.total_recorded);
    w.Key("capacity").Uint(dump.capacity);
    w.Key("dropped").Uint(dump.dropped());
    w.Key("threads").BeginObject();
    for (const auto& [tid, name] : dump.thread_names) {
      w.Key(std::to_string(tid)).String(name);
    }
    w.EndObject();
    w.Key("events").BeginArray();
    for (const FlightEventView& ev : dump.events) {
      w.BeginObject();
      w.Key("seq").Uint(ev.seq);
      w.Key("ts_us").Uint(ev.ts_us);
      w.Key("type").String(FlightEventTypeName(ev.type));
      w.Key("tid").Uint(ev.tid);
      w.Key("thread").String(thread_label(ev.tid));
      w.Key("lsn").Uint(ev.lsn);
      w.Key("a").Uint(ev.a);
      w.Key("b").Uint(ev.b);
      w.Key("text").String(DescribeFlightEvent(ev, dump.strings));
      w.EndObject();
    }
    w.EndArray();
    w.Key("metrics").Raw(dump.metrics_json);
    w.Key("health").Raw(dump.health_json);
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
    return 0;
  }

  std::printf("black box: %s\n", opts.blackbox_path.c_str());
  std::printf("  reason: %s\n", dump.reason.c_str());
  std::printf("  build:  %s\n", dump.build_info_json.c_str());
  std::printf("  events: %llu recorded, %zu in ring (capacity %llu, "
              "%llu overwritten)\n",
              static_cast<unsigned long long>(dump.total_recorded),
              dump.events.size(),
              static_cast<unsigned long long>(dump.capacity),
              static_cast<unsigned long long>(dump.dropped()));
  if (!opts.quiet) {
    std::printf("flight timeline (oldest first):\n");
    for (const FlightEventView& ev : dump.events) {
      std::printf("  %8llu +%-10llu [%-18s] %s\n",
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<unsigned long long>(ev.ts_us),
                  thread_label(ev.tid).c_str(),
                  DescribeFlightEvent(ev, dump.strings).c_str());
    }
  }
  std::printf("metrics at dump:\n%s", dump.metrics_text.c_str());
  std::printf("health at dump: %s\n", dump.health_json.c_str());
  return 0;
}

/// Two-node replication demo: a primary streams the mixed workload to a
/// log-shipped standby, polling every few operations; the final quarter
/// of the workload runs without polling so the status report shows a
/// real, nonzero backlog (one last poll ships it but the standby has not
/// pumped yet). Reports primary durable vs standby applied LSN and the
/// ship.* lag gauges from a metrics snapshot.
int RunShipStatus(const InspectOptions& opts) {
  SimulatedDisk disk;
  EngineOptions eo = DemoEngineOptions(opts);
  auto engine = std::make_unique<RecoveryEngine>(eo, &disk);
  MixedWorkloadOptions wopts;
  wopts.seed = opts.seed;
  MixedWorkload workload(wopts);
  ReplicationChannel channel;
  StandbyOptions sopts;
  sopts.redo_threads = opts.threads;
  StandbyApplier standby(&channel, sopts);
  LogShipper shipper(&disk.log(), &channel);

  auto step = [&](const OperationDesc& op) -> Status {
    Status st = engine->Execute(op);
    if (!st.ok() && !st.IsNotFound()) return st;
    return Status::OK();
  };
  auto fail = [](const char* what, const Status& st) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    return 1;
  };

  Status st;
  for (const OperationDesc& op : workload.SetupOps()) {
    if (!(st = step(op)).ok()) return fail("ship demo workload", st);
  }
  const uint64_t streamed = opts.ops - opts.ops / 4;
  for (uint64_t i = 0; i < opts.ops; ++i) {
    if (!(st = step(workload.Next())).ok()) {
      return fail("ship demo workload", st);
    }
    if (i < streamed && i % 8 == 0) {
      // Shipping moves stable bytes only: force, ship, apply.
      if (!(st = engine->log().ForceAll()).ok()) return fail("force", st);
      if (!(st = shipper.Poll()).ok()) return fail("ship poll", st);
      if (!(st = standby.Pump()).ok()) return fail("standby pump", st);
    }
  }
  if (!(st = engine->log().ForceAll()).ok()) return fail("force", st);
  if (!(st = shipper.Poll()).ok()) return fail("ship poll", st);

  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  auto gauge = [&snap](std::string_view name) -> int64_t {
    auto it = snap.gauges.find(std::string(name));
    return it == snap.gauges.end() ? 0 : it->second;
  };
  const ShipperStats& ship = shipper.stats();
  const StandbyStats& stand = standby.stats();

  if (opts.json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("primary_durable_lsn").Uint(shipper.durable_lsn());
    w.Key("standby_applied_lsn").Uint(standby.applied_lsn());
    w.Key("lag");
    w.BeginObject();
    w.Key("lsn").Int(gauge(metric::kShipLagLsn));
    w.Key("records").Int(gauge(metric::kShipLagRecords));
    w.Key("bytes").Int(gauge(metric::kShipLagBytes));
    w.EndObject();
    w.Key("shipper");
    w.BeginObject();
    w.Key("polls").Uint(ship.polls);
    w.Key("batches_sent").Uint(ship.batches_sent);
    w.Key("records_shipped").Uint(ship.records_shipped);
    w.Key("bytes_shipped").Uint(ship.bytes_shipped);
    w.Key("reconnects").Uint(ship.reconnects);
    w.Key("resyncs").Uint(ship.resyncs);
    w.EndObject();
    w.Key("standby");
    w.BeginObject();
    w.Key("batches_applied").Uint(stand.batches_applied);
    w.Key("records_applied").Uint(stand.records_applied);
    w.Key("ops_redone").Uint(stand.ops_redone);
    w.Key("parallel_bursts").Uint(stand.parallel_bursts);
    w.Key("pending_frames").Uint(channel.pending_frames());
    w.EndObject();
    w.Key("metrics").Raw(snap.ToJson());
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
    return 0;
  }

  std::printf("ship status (demo pair, %llu ops):\n",
              static_cast<unsigned long long>(opts.ops));
  std::printf("  primary durable lsn: %llu\n",
              static_cast<unsigned long long>(shipper.durable_lsn()));
  std::printf("  standby applied lsn: %llu\n",
              static_cast<unsigned long long>(standby.applied_lsn()));
  std::printf("  lag: %lld lsn, %lld records, %lld bytes"
              " (%llu frames in flight)\n",
              static_cast<long long>(gauge(metric::kShipLagLsn)),
              static_cast<long long>(gauge(metric::kShipLagRecords)),
              static_cast<long long>(gauge(metric::kShipLagBytes)),
              static_cast<unsigned long long>(channel.pending_frames()));
  std::printf("  shipper: %llu polls, %llu batches, %llu records,"
              " %llu bytes, %llu reconnects, %llu resyncs\n",
              static_cast<unsigned long long>(ship.polls),
              static_cast<unsigned long long>(ship.batches_sent),
              static_cast<unsigned long long>(ship.records_shipped),
              static_cast<unsigned long long>(ship.bytes_shipped),
              static_cast<unsigned long long>(ship.reconnects),
              static_cast<unsigned long long>(ship.resyncs));
  std::printf("  standby: %llu batches applied, %llu records,"
              " %llu ops redone, %llu parallel bursts\n",
              static_cast<unsigned long long>(stand.batches_applied),
              static_cast<unsigned long long>(stand.records_applied),
              static_cast<unsigned long long>(stand.ops_redone),
              static_cast<unsigned long long>(stand.parallel_bursts));
  std::printf("metrics:\n%s", snap.ToString().c_str());
  return 0;
}

/// Log-as-database status demo: the mixed workload on a kLogStore engine
/// with background compaction on a cadence and cold-tier retention GC,
/// then the operational numbers an operator would ask for — how big is
/// the index, where do the bytes live (hot window vs cold segments), how
/// much of the footprint is dead, and what has the compactor done.
int RunLogstoreStats(const InspectOptions& opts) {
  SimulatedDisk disk;
  // Small cold segments so the table shows the GC granularity at demo
  // scale.
  disk.log().set_cold_segment_target(16 * 1024);
  EngineOptions eo;
  eo.backend = StorageBackend::kLogStore;
  eo.purge_threshold_ops = 12;
  eo.checkpoint_interval_ops = 64;
  eo.logstore.compact_interval_ops = 24;
  eo.logstore.compact_batch_objects = 16;
  eo.logstore.cold_retention_full = false;
  RecoveryEngine engine(eo, &disk);

  MixedWorkloadOptions wopts;
  wopts.seed = opts.seed;
  MixedWorkload workload(wopts);
  auto fail = [](const char* what, const Status& st) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    return 1;
  };
  Status st;
  for (const OperationDesc& op : workload.SetupOps()) {
    if (!(st = engine.Execute(op)).ok()) return fail("logstore demo", st);
  }
  for (uint64_t i = 0; i < opts.ops; ++i) {
    st = engine.Execute(workload.Next());
    if (!st.ok() && !st.IsNotFound()) return fail("logstore demo", st);
  }
  if (!(st = engine.FlushAll()).ok()) return fail("flush", st);
  if (!(st = engine.Checkpoint()).ok()) return fail("checkpoint", st);

  const LogIndex& index = engine.cache().log_index();
  const StableLogDevice& dev = disk.log();
  const ColdTier& cold = dev.cold_tier();
  const CompactionStats& comp = engine.compactor()->stats();
  const uint64_t live = index.live_bytes();
  const uint64_t footprint = dev.retained_bytes() + cold.total_bytes();
  const uint64_t dead = footprint > live ? footprint - live : 0;
  const double amp =
      live == 0 ? 0.0
                : static_cast<double>(footprint) / static_cast<double>(live);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();

  if (opts.json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("index");
    w.BeginObject();
    w.Key("entries").Uint(index.size());
    w.Key("live_bytes").Uint(live);
    w.Key("min_lsn").Uint(index.MinLsn());
    w.EndObject();
    w.Key("footprint");
    w.BeginObject();
    w.Key("hot_bytes").Uint(dev.retained_bytes());
    w.Key("cold_bytes").Uint(cold.total_bytes());
    w.Key("dead_bytes").Uint(dead);
    w.Key("space_amp").Double(amp);
    w.Key("reclaimed_bytes").Uint(dev.reclaimed_bytes());
    w.EndObject();
    w.Key("cold_segments").BeginArray();
    for (const ColdSegment& seg : cold.segments()) {
      w.BeginObject();
      w.Key("start_offset").Uint(seg.start_offset);
      w.Key("end_offset").Uint(seg.end_offset());
      w.Key("bytes").Uint(seg.bytes.size());
      w.EndObject();
    }
    w.EndArray();
    w.Key("compactor");
    w.BeginObject();
    w.Key("runs").Uint(comp.runs);
    w.Key("images_moved").Uint(comp.images_moved);
    w.Key("bytes_moved").Uint(comp.bytes_moved);
    w.Key("noop_runs").Uint(comp.noop_runs);
    w.Key("failures").Uint(comp.failures);
    w.EndObject();
    w.Key("metrics").Raw(snap.ToJson());
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
    return 0;
  }

  std::printf("logstore status (demo workload, %llu ops):\n",
              static_cast<unsigned long long>(opts.ops));
  std::printf("  index: %zu entries, %llu live bytes, min lsn %llu\n",
              index.size(), static_cast<unsigned long long>(live),
              static_cast<unsigned long long>(index.MinLsn()));
  std::printf("  footprint: %llu hot + %llu cold = %llu bytes"
              " (%llu dead, space amp %.2fx)\n",
              static_cast<unsigned long long>(dev.retained_bytes()),
              static_cast<unsigned long long>(cold.total_bytes()),
              static_cast<unsigned long long>(footprint),
              static_cast<unsigned long long>(dead), amp);
  std::printf("  reclaimed: %llu bytes (hot truncation + cold GC)\n",
              static_cast<unsigned long long>(dev.reclaimed_bytes()));
  if (!opts.quiet) {
    std::printf("  cold segments (%zu):\n", cold.segment_count());
    for (const ColdSegment& seg : cold.segments()) {
      std::printf("    [%10llu, %10llu)  %8zu bytes\n",
                  static_cast<unsigned long long>(seg.start_offset),
                  static_cast<unsigned long long>(seg.end_offset()),
                  seg.bytes.size());
    }
  }
  std::printf("  compactor: %llu runs (%llu no-op, %llu failed),"
              " %llu images / %llu bytes moved\n",
              static_cast<unsigned long long>(comp.runs),
              static_cast<unsigned long long>(comp.noop_runs),
              static_cast<unsigned long long>(comp.failures),
              static_cast<unsigned long long>(comp.images_moved),
              static_cast<unsigned long long>(comp.bytes_moved));
  std::printf("metrics (logstore.*):\n");
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("logstore.", 0) == 0 ||
        name == metric::kLogDeviceReclaimedBytes) {
      std::printf("  %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind("logstore.", 0) == 0) {
      std::printf("  %-32s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    }
  }
  return 0;
}

int Run(const InspectOptions& opts) {
  SimulatedDisk disk;
  if (opts.demo) {
    Status st = RunDemo(opts, &disk);
    if (!st.ok()) {
      std::fprintf(stderr, "demo workload: %s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    Status st = ReadDiskImageFile(opts.image_path, &disk);
    if (!st.ok()) {
      std::fprintf(stderr, "open image: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (!opts.save_path.empty()) {
    Status st = WriteDiskImageFile(disk, opts.save_path);
    if (!st.ok()) {
      std::fprintf(stderr, "save image: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!opts.json) {
      std::printf("saved disk image: %s\n", opts.save_path.c_str());
    }
  }

  // The log listing, before recovery touches the disk (recovery trims a
  // torn tail in memory; the listing should show what is actually there).
  std::string listing;
  LogDumpSummary summary;
  Status st = DumpLog(disk.log().Contents(),
                      opts.quiet || opts.json ? nullptr : &listing, &summary);
  if (!st.ok()) {
    std::fprintf(stderr, "dump log: %s\n", st.ToString().c_str());
    return 1;
  }
  LogDumpSummary archive;
  st = DumpLog(disk.log().ArchiveContents(), nullptr, &archive);
  if (!st.ok()) {
    std::fprintf(stderr, "dump archive: %s\n", st.ToString().c_str());
    return 1;
  }

  // Dry-run recovery under tracing. "Dry" relative to the image file:
  // the in-memory disk absorbs the recovery side effects (torn-tail trim,
  // flush-transaction completion) but nothing is written back.
  TraceRecorder& tracer = TraceRecorder::Global();
  RecoveryStats rstats;
  MetricsSnapshot before_recovery = MetricsRegistry::Global().Snapshot();
  bool recovered = false;
  if (opts.recover) {
    tracer.Clear();
    tracer.Enable();
    EngineOptions eo;
    eo.recovery.redo_threads = opts.threads;
    RecoveryEngine engine(eo, &disk);
    st = engine.Recover(&rstats);
    tracer.Disable();
    if (!st.ok()) {
      std::fprintf(stderr, "recovery: %s\n", st.ToString().c_str());
      return 1;
    }
    recovered = true;
  }
  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  std::vector<TraceEvent> events = tracer.Events();

  if (!opts.trace_path.empty()) {
    st = tracer.WriteChromeJson(opts.trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "write trace: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!opts.json) {
      std::printf("wrote recovery trace: %s\n", opts.trace_path.c_str());
    }
  }

  // CI-artifact exports of the state this run just produced.
  if (!opts.telemetry_out.empty() || !opts.prom_out.empty()) {
    TelemetryExporter exporter({opts.telemetry_out, opts.prom_out, nullptr});
    st = exporter.Sample();
    if (!st.ok()) {
      std::fprintf(stderr, "export telemetry: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!opts.json) {
      std::printf("wrote telemetry sample: %s\n",
                  (opts.telemetry_out.empty() ? opts.prom_out
                                              : opts.telemetry_out)
                      .c_str());
    }
  }
  if (!opts.blackbox_out.empty()) {
    st = WriteBlackBoxFile(opts.blackbox_out, "inspect");
    if (!st.ok()) {
      std::fprintf(stderr, "write black box: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!opts.json) {
      std::printf("wrote black box: %s\n", opts.blackbox_out.c_str());
    }
  }

  if (opts.json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("log").Raw(summary.ToJson());
    w.Key("archive").Raw(archive.ToJson());
    if (recovered) {
      w.Key("recovery").Raw(rstats.ToJson());
      w.Key("recovery_metrics").Raw(after.Delta(before_recovery).ToJson());
    }
    w.Key("io").Raw(disk.stats().ToJson());
    w.Key("metrics").Raw(after.ToJson());
    w.Key("trace_event_count").Uint(events.size());
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
    return 0;
  }

  if (!opts.quiet) std::printf("%s", listing.c_str());
  std::printf("---\nretained log: %s\n", summary.ToString().c_str());
  std::printf("full history:  %s\n", archive.ToString().c_str());
  if (opts.class_mix) {
    std::printf("retained %s", summary.ClassMixToString().c_str());
    std::printf("archive %s", archive.ClassMixToString().c_str());
  }
  std::printf("io:            %s\n", disk.stats().ToString().c_str());
  if (recovered) {
    std::printf("recovery:      %s\n", rstats.ToString().c_str());
    std::printf("recovery timeline (%zu events):\n", events.size());
    PrintTimeline(events, stdout);
  }
  std::printf("metrics:\n%s", after.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace loglog

int main(int argc, char** argv) {
  loglog::InspectOptions opts;
  if (!loglog::ParseArgs(argc, argv, &opts)) return loglog::Usage(argv[0]);
  if (!opts.blackbox_path.empty()) return loglog::RunBlackBox(opts);
  if (opts.ship_status) return loglog::RunShipStatus(opts);
  if (opts.logstore_stats) return loglog::RunLogstoreStats(opts);
  return loglog::Run(opts);
}
